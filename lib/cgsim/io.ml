type source = {
  src_name : string;
  make_pull : unit -> unit -> Value.t option;
  make_pull_block : unit -> int -> Value.t array;
      (* Returns at most [n] elements; [||] means exhausted.  Independent
         iterator from [make_pull]: a run uses one or the other. *)
  length : int option;
}

type sink = {
  snk_name : string;
  push : Value.t -> unit;
  push_block : Value.t array -> unit;
}

(* Derive a block pull from a scalar pull (element loop, same stream). *)
let block_of_pull make_pull () =
  let pull = make_pull () in
  fun n ->
    let acc = ref [] in
    let taken = ref 0 in
    let continue = ref true in
    while !continue && !taken < n do
      match pull () with
      | Some v ->
        acc := v :: !acc;
        incr taken
      | None -> continue := false
    done;
    let out = Array.make !taken (Value.Int 0) in
    List.iteri (fun i v -> out.(!taken - 1 - i) <- v) !acc;
    out

let of_list values =
  let make_pull () =
    let rest = ref values in
    fun () ->
      match !rest with
      | [] -> None
      | v :: tl ->
        rest := tl;
        Some v
  in
  {
    src_name = "list-source";
    make_pull;
    make_pull_block = block_of_pull make_pull;
    length = Some (List.length values);
  }

let of_array values =
  {
    src_name = "array-source";
    make_pull =
      (fun () ->
        let i = ref 0 in
        fun () ->
          if !i >= Array.length values then None
          else begin
            let v = values.(!i) in
            incr i;
            Some v
          end);
    (* Array-backed sources hand out [Array.sub] slices directly: the
       whole chunk is one copy, feeding [Bqueue.put_block]'s blit path. *)
    make_pull_block =
      (fun () ->
        let i = ref 0 in
        fun n ->
          let len = min n (Array.length values - !i) in
          if len <= 0 then [||]
          else begin
            let slice = Array.sub values !i len in
            i := !i + len;
            slice
          end);
    length = Some (Array.length values);
  }

let of_f32_array values =
  let tagged = Array.map (fun f -> Value.Float (Value.round_f32 f)) values in
  { (of_array tagged) with src_name = "f32-source" }

let of_int_array dtype values =
  let tagged = Array.map (fun i -> Value.Int (Value.wrap_int dtype i)) values in
  { (of_array tagged) with src_name = "int-source" }

let repeat n values =
  if n < 0 then invalid_arg "cgsim: Io.repeat with negative count";
  let len = List.length values in
  let arr = Array.of_list values in
  let total = n * len in
  {
    src_name = Printf.sprintf "repeat%d-source" n;
    make_pull =
      (fun () ->
        let produced = ref 0 in
        fun () ->
          if !produced >= total then None
          else begin
            let v = arr.(!produced mod len) in
            incr produced;
            Some v
          end);
    make_pull_block =
      (fun () ->
        let produced = ref 0 in
        fun want ->
          let take = min want (total - !produced) in
          if take <= 0 then [||]
          else begin
            let out = Array.init take (fun k -> arr.((!produced + k) mod len)) in
            produced := !produced + take;
            out
          end);
    length = Some total;
  }

let concat sources =
  match sources with
  | [] -> invalid_arg "cgsim: Io.concat needs at least one source"
  | [ s ] -> s
  | _ ->
    let arr = Array.of_list sources in
    let n = Array.length arr in
    let length =
      Array.fold_left
        (fun acc s -> match acc, s.length with Some a, Some l -> Some (a + l) | _ -> None)
        (Some 0) arr
    in
    let make_pull () =
      let idx = ref 0 in
      let cur = ref (arr.(0).make_pull ()) in
      let rec pull () =
        match !cur () with
        | Some _ as v -> v
        | None ->
          if !idx + 1 >= n then None
          else begin
            incr idx;
            cur := arr.(!idx).make_pull ();
            pull ()
          end
      in
      pull
    in
    let make_pull_block () =
      let idx = ref 0 in
      let cur = ref (arr.(0).make_pull_block ()) in
      let rec pull_block want =
        let chunk = !cur want in
        if Array.length chunk > 0 then chunk
        else if !idx + 1 >= n then [||]
        else begin
          incr idx;
          cur := arr.(!idx).make_pull_block ();
          pull_block want
        end
      in
      pull_block
    in
    { src_name = "concat-source"; make_pull; make_pull_block; length }

let of_fun f =
  {
    src_name = "fun-source";
    make_pull = (fun () -> f);
    make_pull_block = block_of_pull (fun () -> f);
    length = None;
  }

let rtp v =
  let make_pull () =
    let sent = ref false in
    fun () ->
      if !sent then None
      else begin
        sent := true;
        Some v
      end
  in
  {
    src_name = "rtp-source";
    make_pull;
    make_pull_block = block_of_pull make_pull;
    length = Some 1;
  }

let source_name s = s.src_name

let with_source_name name s = { s with src_name = name }

let sink_of_push name push = { snk_name = name; push; push_block = Array.iter push }

let buffer () =
  let acc = ref [] in
  ( {
      snk_name = "buffer-sink";
      push = (fun v -> acc := v :: !acc);
      push_block = (fun vs -> Array.iter (fun v -> acc := v :: !acc) vs);
    },
    fun () -> List.rev !acc )

let f32_buffer () =
  let sink, contents = buffer () in
  ( { sink with snk_name = "f32-buffer-sink" },
    fun () -> Array.of_list (List.map Value.to_float (contents ())) )

let int_buffer () =
  let sink, contents = buffer () in
  ( { sink with snk_name = "int-buffer-sink" },
    fun () -> Array.of_list (List.map Value.to_int (contents ())) )

let counter () =
  let n = ref 0 in
  ( {
      snk_name = "counter-sink";
      push = (fun _ -> incr n);
      push_block = (fun vs -> n := !n + Array.length vs);
    },
    fun () -> !n )

let rtp_sink () =
  let cell = ref None in
  ( sink_of_push "rtp-sink" (fun v -> cell := Some v),
    fun () -> !cell )

let null () = { snk_name = "null-sink"; push = ignore; push_block = ignore }

let of_consumer push = sink_of_push "consumer-sink" push

let sink_name s = s.snk_name

let with_sink_name name s = { s with snk_name = name }

let source_pull s = s.make_pull ()

let source_pull_block s = s.make_pull_block ()

let source_length s = s.length

let sink_push s v = s.push v

let sink_push_block s vs = s.push_block vs

type source = {
  src_name : string;
  make_pull : unit -> unit -> Value.t option;
  make_pull_block : unit -> int -> Value.t array;
      (* Returns at most [n] elements; [||] means exhausted.  Independent
         iterator from [make_pull]: a run uses one or the other. *)
  make_pull_floats : unit -> int -> float array;
      (* Unboxed block pull (float payloads), same contract as
         [make_pull_block]; the runtime selects it on unboxed float
         nets so source data never boxes.  Independent iterator. *)
  make_pull_ints : unit -> int -> int array;
  length : int option;
}

type sink = {
  snk_name : string;
  push : Value.t -> unit;
  push_block : Value.t array -> unit;
  push_floats : float array -> unit;
  push_ints : int array -> unit;
}

(* Derive a block pull from a scalar pull (element loop, same stream). *)
let block_of_pull make_pull () =
  let pull = make_pull () in
  fun n ->
    let acc = ref [] in
    let taken = ref 0 in
    let continue = ref true in
    while !continue && !taken < n do
      match pull () with
      | Some v ->
        acc := v :: !acc;
        incr taken
      | None -> continue := false
    done;
    let out = Array.make !taken (Value.Int 0) in
    List.iteri (fun i v -> out.(!taken - 1 - i) <- v) !acc;
    out

(* Derive the unboxed pulls from the block pull: one block underneath,
   unbox at the boundary (sources with flat native storage override). *)
let floats_of_block make_pull_block () =
  let pull_block = make_pull_block () in
  fun n -> Array.map Value.to_float (pull_block n)

let ints_of_block make_pull_block () =
  let pull_block = make_pull_block () in
  fun n -> Array.map Value.to_int (pull_block n)

let of_list values =
  let make_pull () =
    let rest = ref values in
    fun () ->
      match !rest with
      | [] -> None
      | v :: tl ->
        rest := tl;
        Some v
  in
  let make_pull_block = block_of_pull make_pull in
  {
    src_name = "list-source";
    make_pull;
    make_pull_block;
    make_pull_floats = floats_of_block make_pull_block;
    make_pull_ints = ints_of_block make_pull_block;
    length = Some (List.length values);
  }

let of_array values =
  let make_pull_block () =
    let i = ref 0 in
    fun n ->
      let len = min n (Array.length values - !i) in
      if len <= 0 then [||]
      else begin
        let slice = Array.sub values !i len in
        i := !i + len;
        slice
      end
  in
  {
    src_name = "array-source";
    make_pull =
      (fun () ->
        let i = ref 0 in
        fun () ->
          if !i >= Array.length values then None
          else begin
            let v = values.(!i) in
            incr i;
            Some v
          end);
    (* Array-backed sources hand out [Array.sub] slices directly: the
       whole chunk is one copy, feeding [Bqueue.put_block]'s blit path. *)
    make_pull_block;
    make_pull_floats = floats_of_block make_pull_block;
    make_pull_ints = ints_of_block make_pull_block;
    length = Some (Array.length values);
  }

(* Flat slice pulls over native float/int backing arrays: the chunk is
   one [Array.sub], no boxing anywhere on the unboxed path. *)
let flat_float_pull values () =
  let i = ref 0 in
  fun n ->
    let len = min n (Array.length values - !i) in
    if len <= 0 then [||]
    else begin
      let slice = Array.sub values !i len in
      i := !i + len;
      slice
    end

let flat_int_pull (values : int array) () =
  let i = ref 0 in
  fun n ->
    let len = min n (Array.length values - !i) in
    if len <= 0 then [||]
    else begin
      let slice = Array.sub values !i len in
      i := !i + len;
      slice
    end

let of_f32_array values =
  (* Round once, up front: both the boxed and the unboxed path then
     deliver identical single-precision data (the equivalence the
     fused/unboxed baselines assert).  The boxed [Value.t] view is
     derived lazily: a run whose input net is unboxed only ever calls
     [make_pull_floats], and tagging a large input would dominate the
     run it feeds. *)
  let rounded = Array.map Value.round_f32 values in
  let tagged = lazy (Array.map (fun f -> Value.Float f) rounded) in
  let boxed = lazy (of_array (Lazy.force tagged)) in
  {
    src_name = "f32-source";
    make_pull = (fun () -> (Lazy.force boxed).make_pull ());
    make_pull_block = (fun () -> (Lazy.force boxed).make_pull_block ());
    make_pull_floats = flat_float_pull rounded;
    make_pull_ints = ints_of_block (fun () -> (Lazy.force boxed).make_pull_block ());
    length = Some (Array.length rounded);
  }

let of_int_array dtype values =
  let wrapped = Array.map (Value.wrap_int dtype) values in
  let tagged = lazy (Array.map (fun i -> Value.Int i) wrapped) in
  let boxed = lazy (of_array (Lazy.force tagged)) in
  {
    src_name = "int-source";
    make_pull = (fun () -> (Lazy.force boxed).make_pull ());
    make_pull_block = (fun () -> (Lazy.force boxed).make_pull_block ());
    make_pull_floats = floats_of_block (fun () -> (Lazy.force boxed).make_pull_block ());
    make_pull_ints = flat_int_pull wrapped;
    length = Some (Array.length wrapped);
  }

let repeat n values =
  if n < 0 then invalid_arg "cgsim: Io.repeat with negative count";
  let len = List.length values in
  let arr = Array.of_list values in
  let total = n * len in
  let make_pull_block () =
    let produced = ref 0 in
    fun want ->
      let take = min want (total - !produced) in
      if take <= 0 then [||]
      else begin
        let out = Array.init take (fun k -> arr.((!produced + k) mod len)) in
        produced := !produced + take;
        out
      end
  in
  {
    src_name = Printf.sprintf "repeat%d-source" n;
    make_pull =
      (fun () ->
        let produced = ref 0 in
        fun () ->
          if !produced >= total then None
          else begin
            let v = arr.(!produced mod len) in
            incr produced;
            Some v
          end);
    make_pull_block;
    make_pull_floats = floats_of_block make_pull_block;
    make_pull_ints = ints_of_block make_pull_block;
    length = Some total;
  }

let concat sources =
  match sources with
  | [] -> invalid_arg "cgsim: Io.concat needs at least one source"
  | [ s ] -> s
  | _ ->
    let arr = Array.of_list sources in
    let n = Array.length arr in
    let length =
      Array.fold_left
        (fun acc s -> match acc, s.length with Some a, Some l -> Some (a + l) | _ -> None)
        (Some 0) arr
    in
    let make_pull () =
      let idx = ref 0 in
      let cur = ref (arr.(0).make_pull ()) in
      let rec pull () =
        match !cur () with
        | Some _ as v -> v
        | None ->
          if !idx + 1 >= n then None
          else begin
            incr idx;
            cur := arr.(!idx).make_pull ();
            pull ()
          end
      in
      pull
    in
    (* One chunked iterator shape for all three block pulls, so the
       batching path (concat of per-request sources) stays unboxed when
       its parts are. *)
    let chunked part () =
      let idx = ref 0 in
      let cur = ref (part arr.(0) ()) in
      let rec pull_block want =
        let chunk = !cur want in
        if Array.length chunk > 0 then chunk
        else if !idx + 1 >= n then [||]
        else begin
          incr idx;
          cur := part arr.(!idx) ();
          pull_block want
        end
      in
      pull_block
    in
    {
      src_name = "concat-source";
      make_pull;
      make_pull_block = chunked (fun s -> s.make_pull_block);
      make_pull_floats = chunked (fun s -> s.make_pull_floats);
      make_pull_ints = chunked (fun s -> s.make_pull_ints);
      length;
    }

let of_fun f =
  let make_pull_block = block_of_pull (fun () -> f) in
  {
    src_name = "fun-source";
    make_pull = (fun () -> f);
    make_pull_block;
    make_pull_floats = floats_of_block make_pull_block;
    make_pull_ints = ints_of_block make_pull_block;
    length = None;
  }

let rtp v =
  let make_pull () =
    let sent = ref false in
    fun () ->
      if !sent then None
      else begin
        sent := true;
        Some v
      end
  in
  let make_pull_block = block_of_pull make_pull in
  {
    src_name = "rtp-source";
    make_pull;
    make_pull_block;
    make_pull_floats = floats_of_block make_pull_block;
    make_pull_ints = ints_of_block make_pull_block;
    length = Some 1;
  }

let source_name s = s.src_name

let with_source_name name s = { s with src_name = name }

let sink_of_push name push =
  {
    snk_name = name;
    push;
    push_block = Array.iter push;
    push_floats = (fun fs -> Array.iter (fun f -> push (Value.Float f)) fs);
    push_ints = (fun is -> Array.iter (fun i -> push (Value.Int i)) is);
  }

let buffer () =
  let acc = ref [] in
  ( {
      snk_name = "buffer-sink";
      push = (fun v -> acc := v :: !acc);
      push_block = (fun vs -> Array.iter (fun v -> acc := v :: !acc) vs);
      push_floats = (fun fs -> Array.iter (fun f -> acc := Value.Float f :: !acc) fs);
      push_ints = (fun is -> Array.iter (fun i -> acc := Value.Int i :: !acc) is);
    },
    fun () -> List.rev !acc )

(* Growable flat accumulator shared by the typed buffer sinks: boxed and
   unboxed pushes land in the same native array, so the post-run view is
   one [Array.sub] whichever path the run used. *)
let flat_buffer ~(zero : 'a) ~(of_value : Value.t -> 'a) =
  let buf = ref (Array.make 64 zero) in
  let len = ref 0 in
  let reserve n =
    if !len + n > Array.length !buf then begin
      let nc = ref (Array.length !buf * 2) in
      while !nc < !len + n do
        nc := !nc * 2
      done;
      let b = Array.make !nc zero in
      Array.blit !buf 0 b 0 !len;
      buf := b
    end
  in
  let push_one x =
    reserve 1;
    !buf.(!len) <- x;
    incr len
  in
  let push_many xs =
    let n = Array.length xs in
    reserve n;
    Array.blit xs 0 !buf !len n;
    len := !len + n
  in
  let push_values vs =
    let n = Array.length vs in
    reserve n;
    for i = 0 to n - 1 do
      !buf.(!len + i) <- of_value vs.(i)
    done;
    len := !len + n
  in
  push_one, push_many, push_values, fun () -> Array.sub !buf 0 !len

let f32_buffer () =
  let push_one, push_floats, push_values, contents =
    flat_buffer ~zero:0. ~of_value:Value.to_float
  in
  ( {
      snk_name = "f32-buffer-sink";
      push = (fun v -> push_one (Value.to_float v));
      push_block = push_values;
      push_floats;
      push_ints = (fun is -> Array.iter (fun i -> push_one (float_of_int i)) is);
    },
    contents )

let int_buffer () =
  let push_one, push_ints, push_values, contents = flat_buffer ~zero:0 ~of_value:Value.to_int in
  ( {
      snk_name = "int-buffer-sink";
      push = (fun v -> push_one (Value.to_int v));
      push_block = push_values;
      push_floats = (fun fs -> Array.iter (fun f -> push_one (int_of_float f)) fs);
      push_ints;
    },
    contents )

let counter () =
  let n = ref 0 in
  ( {
      snk_name = "counter-sink";
      push = (fun _ -> incr n);
      push_block = (fun vs -> n := !n + Array.length vs);
      push_floats = (fun fs -> n := !n + Array.length fs);
      push_ints = (fun is -> n := !n + Array.length is);
    },
    fun () -> !n )

let rtp_sink () =
  let cell = ref None in
  ( sink_of_push "rtp-sink" (fun v -> cell := Some v),
    fun () -> !cell )

let null () =
  { snk_name = "null-sink"; push = ignore; push_block = ignore; push_floats = ignore;
    push_ints = ignore }

let of_consumer push = sink_of_push "consumer-sink" push

let sink_name s = s.snk_name

let with_sink_name name s = { s with snk_name = name }

let source_pull s = s.make_pull ()

let source_pull_block s = s.make_pull_block ()

let source_pull_floats s = s.make_pull_floats ()

let source_pull_ints s = s.make_pull_ints ()

let source_length s = s.length

let sink_push s v = s.push v

let sink_push_block s vs = s.push_block vs

let sink_push_floats s fs = s.push_floats fs

let sink_push_ints s is = s.push_ints is

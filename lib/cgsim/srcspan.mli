(** Neutral source spans carried by serialized graphs.

    When a graph is produced by the CGC const-evaluator, every kernel
    instantiation and connector declaration keeps a pointer back to the
    source construct that created it.  The span lives in cgsim (not the
    CGC front-end) because the serialized form — the flat artifact every
    downstream consumer reads — must be expressible without a dependency
    on the front-end; builder-made graphs simply leave it unset.  The
    static analyzer ({!module:Analysis} in [lib/analysis]) attaches these
    spans to its diagnostics so lint findings point at CGC source. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  end_line : int;
  end_col : int;
}

val make : file:string -> line:int -> col:int -> ?end_line:int -> ?end_col:int -> unit -> t

val equal : t -> t -> bool

(** "file:line:col" (the start position — the form editors jump to). *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Compact codec used by the textual graph format:
    "file:line:col:end_line:end_col".  [of_compact] accepts the same
    form back; file names containing ':' round-trip because the four
    numeric fields are taken from the right. *)
val to_compact : t -> string

val of_compact : string -> t option

(* Tests for the static analyzer (lib/analysis): rate/balance analysis,
   capacity-aware deadlock detection, fan-out/settings hazards, pool
   safety, the shared reporter, and the three surfaces that consume the
   findings (runtime pre-flight, cgx-style linting of CGC sources, and
   the extractor gate). *)

open Analysis
module D = Cgsim.Diagnostic

let contains needle hay =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let cgc_dir =
  (* Tests run from the build sandbox; sources live in the repo. *)
  let rec find dir =
    let candidate = Filename.concat dir "examples/cgc" in
    if Sys.file_exists candidate then candidate
    else begin
      let parent = Filename.dirname dir in
      if String.equal parent dir then failwith "cannot locate examples/cgc"
      else find parent
    end
  in
  find (Sys.getcwd ())

let with_code code diags = List.filter (fun (d : D.t) -> d.D.code = code) diags

let has_code code diags = with_code code diags <> []

(* ------------------------------------------------------------------ *)
(* Kernel helpers                                                      *)
(* ------------------------------------------------------------------ *)

let idle_body _ = ()

(* A stream kernel with one input and one output, optionally rated. *)
let stream_kernel ?rates ?pure ?(body = idle_body) ?in_settings ?out_settings name =
  let k =
    Cgsim.Kernel.define ?rates ?pure ~realm:Cgsim.Kernel.Noextract ~name
      [
        Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32 ?settings:in_settings;
        Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32 ?settings:out_settings;
      ]
      body
  in
  Cgsim.Registry.register k;
  k

let sink_kernel name =
  let k =
    Cgsim.Kernel.define ~realm:Cgsim.Kernel.Noextract ~name
      [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32 ]
      idle_body
  in
  Cgsim.Registry.register k;
  k

(* in + feedback-in -> out, and its partner in -> feedback-out + out;
   wired together they form the canonical two-kernel cycle. *)
let cycle_kernels ?rates ?fb_depth prefix =
  let fb_settings =
    match fb_depth with
    | Some d -> Some (Cgsim.Settings.with_depth d Cgsim.Settings.stream)
    | None -> None
  in
  let fwd =
    Cgsim.Kernel.define ~realm:Cgsim.Kernel.Noextract ~name:(prefix ^ "_fwd")
      ?rates:(Option.map (fun r -> [ "in", r; "fb", r; "out", r ]) rates)
      [
        Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
        Cgsim.Kernel.in_port "fb" Cgsim.Dtype.F32 ?settings:fb_settings;
        Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32;
      ]
      idle_body
  in
  let back =
    Cgsim.Kernel.define ~realm:Cgsim.Kernel.Noextract ~name:(prefix ^ "_back")
      ?rates:(Option.map (fun r -> [ "in", r; "fb", r; "out", r ]) rates)
      [
        Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
        Cgsim.Kernel.out_port "fb" Cgsim.Dtype.F32;
        Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32;
      ]
      idle_body
  in
  Cgsim.Registry.register fwd;
  Cgsim.Registry.register back;
  fwd, back

let cycle_graph ~name (fwd, back) =
  Cgsim.Builder.make ~name ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun b conns ->
      let inp = List.hd conns in
      let fb = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      let mid = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      ignore (Cgsim.Builder.add_kernel b fwd [ inp; fb; mid ]);
      ignore (Cgsim.Builder.add_kernel b back [ mid; fb; out ]);
      [ out ])

(* ------------------------------------------------------------------ *)
(* Rates                                                               *)
(* ------------------------------------------------------------------ *)

let test_rates_balanced () =
  let a = stream_kernel ~rates:[ "in", 2; "out", 6 ] "ana_bal_a" in
  let b = stream_kernel ~rates:[ "in", 3; "out", 1 ] "ana_bal_b" in
  let g =
    Cgsim.Builder.make ~name:"ana_balanced" ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun bld conns ->
        let mid = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        let out = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bld a [ List.hd conns; mid ]);
        ignore (Cgsim.Builder.add_kernel bld b [ mid; out ]);
        [ out ])
  in
  let diags = Rates.analyze g in
  Alcotest.(check bool) "no imbalance" false (has_code "CG-E101" diags);
  match with_code "CG-I102" diags with
  | [ d ] ->
    (* a fires 1x producing 6, b fires 2x consuming 3 each. *)
    Alcotest.(check bool) "vector 1:2" true
      (contains "ana_bal_a_0×1" d.D.message && contains "ana_bal_b_0×2" d.D.message)
  | ds -> Alcotest.failf "expected one repetition vector, got %d" (List.length ds)

let test_rates_unbalanced () =
  (* Two parallel nets with incompatible ratios between the same pair. *)
  let a =
    Cgsim.Kernel.define ~realm:Cgsim.Kernel.Noextract ~name:"ana_unb_a"
      ~rates:[ "in", 1; "o1", 2; "o2", 3 ]
      [
        Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
        Cgsim.Kernel.out_port "o1" Cgsim.Dtype.F32;
        Cgsim.Kernel.out_port "o2" Cgsim.Dtype.F32;
      ]
      idle_body
  in
  let b =
    Cgsim.Kernel.define ~realm:Cgsim.Kernel.Noextract ~name:"ana_unb_b"
      ~rates:[ "i1", 2; "i2", 2; "out", 1 ]
      [
        Cgsim.Kernel.in_port "i1" Cgsim.Dtype.F32;
        Cgsim.Kernel.in_port "i2" Cgsim.Dtype.F32;
        Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32;
      ]
      idle_body
  in
  Cgsim.Registry.register a;
  Cgsim.Registry.register b;
  let g =
    Cgsim.Builder.make ~name:"ana_unbalanced" ~inputs:[ "in", Cgsim.Dtype.F32 ]
      (fun bld conns ->
        let n1 = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        let n2 = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        let out = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bld a [ List.hd conns; n1; n2 ]);
        ignore (Cgsim.Builder.add_kernel bld b [ n1; n2; out ]);
        [ out ])
  in
  match with_code "CG-E101" (Rates.analyze g) with
  | [ d ] ->
    Alcotest.(check bool) "names both kernels" true
      (List.mem "ana_unb_a_0" d.D.kernels && List.mem "ana_unb_b_0" d.D.kernels);
    Alcotest.(check bool) "names a net" true (d.D.nets <> []);
    Alcotest.(check bool) "is error" true (d.D.severity = D.Error)
  | ds -> Alcotest.failf "expected exactly one CG-E101, got %d" (List.length ds)

let test_rates_zero_against_positive () =
  let a = stream_kernel ~rates:[ "in", 1; "out", 0 ] "ana_zero_a" in
  let b = stream_kernel ~rates:[ "in", 4; "out", 4 ] "ana_zero_b" in
  let g =
    Cgsim.Builder.make ~name:"ana_zero" ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun bld conns ->
        let mid = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        let out = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bld a [ List.hd conns; mid ]);
        ignore (Cgsim.Builder.add_kernel bld b [ mid; out ]);
        [ out ])
  in
  Alcotest.(check bool) "zero against positive is an imbalance" true
    (has_code "CG-E101" (Rates.analyze g))

let test_rates_window_implied () =
  (* No declared rates: the shared 64-byte window implies 16 f32 beats
     per firing on both sides, so the component still solves. *)
  let w = Cgsim.Settings.window 64 in
  let a = stream_kernel ~out_settings:w "ana_win_a" in
  let b = stream_kernel ~in_settings:w "ana_win_b" in
  let g =
    Cgsim.Builder.make ~name:"ana_window" ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun bld conns ->
        let mid = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        let out = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bld a [ List.hd conns; mid ]);
        ignore (Cgsim.Builder.add_kernel bld b [ mid; out ]);
        [ out ])
  in
  let diags = Rates.analyze g in
  Alcotest.(check bool) "no imbalance" false (has_code "CG-E101" diags);
  Alcotest.(check bool) "solved repetition vector" true (has_code "CG-I102" diags)

(* ------------------------------------------------------------------ *)
(* Deadlock                                                            *)
(* ------------------------------------------------------------------ *)

let test_deadlock_underbuffered () =
  let ks = cycle_kernels ~rates:64 ~fb_depth:4 "ana_dl_small" in
  let g = cycle_graph ~name:"ana_dl_under" ks in
  match with_code "CG-E201" (Deadlock.analyze g) with
  | [ d ] ->
    Alcotest.(check bool) "error severity" true (d.D.severity = D.Error);
    Alcotest.(check bool) "names both cycle kernels" true
      (List.mem "ana_dl_small_fwd_0" d.D.kernels && List.mem "ana_dl_small_back_0" d.D.kernels);
    Alcotest.(check bool) "names the feedback net" true (d.D.nets <> []);
    Alcotest.(check bool) "explains the bound" true
      (contains "buffers 4 elements" d.D.message && contains "at least 64" d.D.message)
  | ds -> Alcotest.failf "expected exactly one CG-E201, got %d" (List.length ds)

let test_deadlock_buffered_ok () =
  let ks = cycle_kernels ~rates:64 ~fb_depth:64 "ana_dl_big" in
  let g = cycle_graph ~name:"ana_dl_ok" ks in
  let diags = Deadlock.analyze g in
  Alcotest.(check bool) "no deadlock error" false (has_code "CG-E201" diags);
  Alcotest.(check bool) "cycle verified info" true (has_code "CG-I203" diags)

let test_deadlock_unknown_rates () =
  let ks = cycle_kernels "ana_dl_unk" in
  let g = cycle_graph ~name:"ana_dl_unknown" ks in
  let diags = Deadlock.analyze g in
  Alcotest.(check bool) "no hard error without rates" false (has_code "CG-E201" diags);
  Alcotest.(check bool) "conservative warning" true (has_code "CG-W202" diags)

let test_acyclic_no_findings () =
  let a = stream_kernel "ana_acyc_a" in
  let b = stream_kernel "ana_acyc_b" in
  let g =
    Cgsim.Builder.make ~name:"ana_acyclic" ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun bld conns ->
        let mid = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        let out = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bld a [ List.hd conns; mid ]);
        ignore (Cgsim.Builder.add_kernel bld b [ mid; out ]);
        [ out ])
  in
  Alcotest.(check int) "no cycle findings" 0 (List.length (Deadlock.analyze g))

(* ------------------------------------------------------------------ *)
(* Capacity synthesis                                                  *)
(* ------------------------------------------------------------------ *)

let test_capacity_suggestion () =
  (* The canonical under-buffered cycle: depth 4 against a 64-wide
     firing.  The synthesizer must propose exactly the demand. *)
  let ks = cycle_kernels ~rates:64 ~fb_depth:4 "ana_cap_small" in
  let g = cycle_graph ~name:"ana_cap_under" ks in
  (match Capacity.suggest g with
   | [ (_, depth) ] -> Alcotest.(check int) "minimal depth" 64 depth
   | caps -> Alcotest.failf "expected one suggestion, got %d" (List.length caps));
  match with_code "CG-I204" (Capacity.analyze g) with
  | [ d ] ->
    Alcotest.(check bool) "info severity" true (d.D.severity = D.Info);
    Alcotest.(check bool) "names both cycle kernels" true
      (List.mem "ana_cap_small_fwd_0" d.D.kernels
       && List.mem "ana_cap_small_back_0" d.D.kernels);
    Alcotest.(check bool) "names the starved net" true (d.D.net_ids <> []);
    Alcotest.(check bool) "carries the per-net depth" true
      (contains "4 -> 64" d.D.message)
  | ds -> Alcotest.failf "expected exactly one CG-I204, got %d" (List.length ds)

let test_capacity_quiet_when_buffered () =
  let ks = cycle_kernels ~rates:64 ~fb_depth:64 "ana_cap_big" in
  let g = cycle_graph ~name:"ana_cap_ok" ks in
  Alcotest.(check (list (pair int int))) "no suggestions" [] (Capacity.suggest g);
  Alcotest.(check int) "no CG-I204" 0 (List.length (Capacity.analyze g))

let test_capacity_quiet_on_acyclic () =
  let a = stream_kernel "ana_cap_acyc_a" in
  let b = stream_kernel "ana_cap_acyc_b" in
  let g =
    Cgsim.Builder.make ~name:"ana_cap_acyclic" ~inputs:[ "in", Cgsim.Dtype.F32 ]
      (fun bld conns ->
        let mid = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        let out = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bld a [ List.hd conns; mid ]);
        ignore (Cgsim.Builder.add_kernel bld b [ mid; out ]);
        [ out ])
  in
  Alcotest.(check (list (pair int int))) "nothing to size" [] (Capacity.suggest g)

(* ------------------------------------------------------------------ *)
(* Throughput bound                                                    *)
(* ------------------------------------------------------------------ *)

let test_throughput_unit_bottleneck () =
  (* a fires 1x (producing 6), b fires 2x (consuming 3): at unit cost b
     is the structural bottleneck with 2 of 3 firings. *)
  let a = stream_kernel ~rates:[ "in", 2; "out", 6 ] "ana_thr_a" in
  let b = stream_kernel ~rates:[ "in", 3; "out", 1 ] "ana_thr_b" in
  let g =
    Cgsim.Builder.make ~name:"ana_thr" ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun bld conns ->
        let mid = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        let out = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bld a [ List.hd conns; mid ]);
        ignore (Cgsim.Builder.add_kernel bld b [ mid; out ]);
        [ out ])
  in
  (match Throughput.bound g with
   | Some bd ->
     Alcotest.(check string) "bottleneck" "ana_thr_b_0" bd.Throughput.b_bottleneck;
     Alcotest.(check (float 1e-9)) "total firings" 3.0 bd.Throughput.b_total;
     Alcotest.(check bool) "unit cost is not a request ceiling" true
       (Throughput.sequential_per_sec bd = None)
   | None -> Alcotest.fail "expected a bound for a non-empty graph");
  match with_code "CG-I105" (Throughput.analyze g) with
  | [ d ] ->
    Alcotest.(check bool) "info severity" true (d.D.severity = D.Info);
    Alcotest.(check bool) "names the bottleneck" true (List.mem "ana_thr_b_0" d.D.kernels)
  | ds -> Alcotest.failf "expected exactly one CG-I105, got %d" (List.length ds)

let test_throughput_measured_ceiling () =
  let a = stream_kernel ~rates:[ "in", 1; "out", 1 ] "ana_thrm_a" in
  let b = stream_kernel ~rates:[ "in", 1; "out", 1 ] "ana_thrm_b" in
  let g =
    Cgsim.Builder.make ~name:"ana_thrm" ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun bld conns ->
        let mid = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        let out = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bld a [ List.hd conns; mid ]);
        ignore (Cgsim.Builder.add_kernel bld b [ mid; out ]);
        [ out ])
  in
  (* 600ns + 400ns per request -> a 1e9/1000 = 1M req/s sequential
     ceiling, bottleneck a; pipelined the 600ns stage dominates. *)
  let cost = function
    | "ana_thrm_a_0" -> Some 600.0
    | "ana_thrm_b_0" -> Some 400.0
    | _ -> None
  in
  match Throughput.bound ~cost g with
  | Some bd ->
    Alcotest.(check string) "bottleneck" "ana_thrm_a_0" bd.Throughput.b_bottleneck;
    (match Throughput.sequential_per_sec bd with
     | Some rps -> Alcotest.(check (float 1.0)) "sequential ceiling" 1e6 rps
     | None -> Alcotest.fail "measured bound must give a sequential ceiling");
    (match Throughput.pipelined_per_sec bd with
     | Some rps ->
       Alcotest.(check (float 1.0)) "pipelined ceiling" (1e9 /. 600.0) rps
     | None -> Alcotest.fail "measured bound must give a pipelined ceiling")
  | None -> Alcotest.fail "expected a bound"

let test_throughput_cycle_is_one_stage () =
  (* Cycle kernels cannot overlap: pipelined critical weight is the
     cycle's sum, not the max member. *)
  let ks = cycle_kernels ~rates:8 ~fb_depth:8 "ana_thr_cyc" in
  let g = cycle_graph ~name:"ana_thr_cycle" ks in
  let cost = function
    | "ana_thr_cyc_fwd_0" -> Some 300.0
    | "ana_thr_cyc_back_0" -> Some 200.0
    | _ -> None
  in
  match Throughput.bound ~cost g with
  | Some bd -> Alcotest.(check (float 1e-9)) "critical = cycle sum" 500.0 bd.Throughput.b_critical
  | None -> Alcotest.fail "expected a bound"

(* ------------------------------------------------------------------ *)
(* Hazards                                                             *)
(* ------------------------------------------------------------------ *)

let fanout_graph ~suppress name =
  let src = stream_kernel (name ^ "_src") in
  let taps = List.init 4 (fun i -> sink_kernel (Printf.sprintf "%s_tap%d" name i)) in
  Cgsim.Builder.make ~name ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun bld conns ->
      let mid = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
      ignore (Cgsim.Builder.add_kernel bld src [ List.hd conns; mid ]);
      List.iter (fun t -> ignore (Cgsim.Builder.add_kernel bld t [ mid ])) taps;
      if suppress then
        Cgsim.Builder.attach_attributes bld mid
          [ Cgsim.Attr.s "lint.suppress" "CG-W301, CG-W302" ];
      (* The broadcast net is also the graph output: 4 kernel readers
         plus the sink fiber = 5 consumers. *)
      [ mid ])

let test_hazard_fanout () =
  let g = fanout_graph ~suppress:false "ana_fan" in
  match with_code "CG-W301" (Hazards.analyze g) with
  | [ d ] ->
    Alcotest.(check bool) "warning severity" true (d.D.severity = D.Warning);
    Alcotest.(check bool) "counts all consumers" true (contains "5 consumers" d.D.message)
  | ds -> Alcotest.failf "expected one CG-W301, got %d" (List.length ds)

let test_hazard_spsc_demotion () =
  let src = stream_kernel "ana_spsc_src" in
  let tap = sink_kernel "ana_spsc_tap" in
  let g =
    Cgsim.Builder.make ~name:"ana_spsc" ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun bld conns ->
        let mid = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bld src [ List.hd conns; mid ]);
        ignore (Cgsim.Builder.add_kernel bld tap [ mid ]);
        [ mid ])
  in
  Alcotest.(check bool) "tap demotion flagged" true (has_code "CG-W302" (Hazards.analyze g))

let test_hazard_partial_beat () =
  (* 12-byte elements into 8-byte beats: neither divides the other. *)
  let dtype = Cgsim.Dtype.Vector (Cgsim.Dtype.F32, 3) in
  let k =
    Cgsim.Kernel.define ~realm:Cgsim.Kernel.Noextract ~name:"ana_beat_k"
      [
        Cgsim.Kernel.in_port "in" dtype
          ~settings:(Cgsim.Settings.with_beat 8 Cgsim.Settings.stream);
        Cgsim.Kernel.out_port "out" dtype;
      ]
      idle_body
  in
  Cgsim.Registry.register k;
  let g =
    Cgsim.Builder.make ~name:"ana_beat" ~inputs:[ "in", dtype ] (fun bld conns ->
        let out = Cgsim.Builder.net bld dtype in
        ignore (Cgsim.Builder.add_kernel bld k [ List.hd conns; out ]);
        [ out ])
  in
  Alcotest.(check bool) "partial beat flagged" true (has_code "CG-W303" (Hazards.analyze g))

let test_suppression () =
  let g = fanout_graph ~suppress:true "ana_fansup" in
  let diags = Lint.run g in
  Alcotest.(check bool) "CG-W301 suppressed" false (has_code "CG-W301" diags);
  Alcotest.(check bool) "CG-W302 suppressed" false (has_code "CG-W302" diags)

(* ------------------------------------------------------------------ *)
(* Pool safety                                                         *)
(* ------------------------------------------------------------------ *)

let stateful_offset = ref 0.0

let stateful_kernel =
  lazy
    (stream_kernel ~pure:false "ana_stateful"
       ~body:(fun b ->
         let r = Cgsim.Kernel.rd b 0 and w = Cgsim.Kernel.wr b 0 in
         while true do
           (* Shared mutable state *outside* the body: carries across
              instantiations, the exact hazard CG-W401 is about. *)
           stateful_offset := !stateful_offset +. 1.0;
           Cgsim.Port.put_f32 w (Cgsim.Port.get_f32 r +. !stateful_offset)
         done))

let test_pool_safety_flags () =
  let k = Lazy.force stateful_kernel in
  let u = stream_kernel "ana_unknown_purity" in
  let g =
    Cgsim.Builder.make ~name:"ana_pool" ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun bld conns ->
        let mid = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        let out = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bld k [ List.hd conns; mid ]);
        ignore (Cgsim.Builder.add_kernel bld u [ mid; out ]);
        [ out ])
  in
  let diags = Pool_safety.analyze g in
  (match with_code "CG-W401" diags with
   | [ d ] -> Alcotest.(check bool) "names the instance" true (List.mem "ana_stateful_0" d.D.kernels)
   | ds -> Alcotest.failf "expected one CG-W401, got %d" (List.length ds));
  match with_code "CG-I402" diags with
  | [ d ] -> Alcotest.(check bool) "lists the undeclared kernel" true
               (contains "ana_unknown_purity" d.D.message)
  | ds -> Alcotest.failf "expected one CG-I402, got %d" (List.length ds)

let test_stateful_spot_check () =
  (* Runtime-assisted confirmation that the declaration is truthful:
     back-to-back runs of the stateful kernel disagree on identical
     input, while a pure kernel reproduces. *)
  let k = Lazy.force stateful_kernel in
  let g =
    Cgsim.Builder.make ~name:"ana_spot" ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun bld conns ->
        let out = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bld k [ List.hd conns; out ]);
        [ out ])
  in
  let run_once () =
    let sink, contents = Cgsim.Io.f32_buffer () in
    let _ =
      Cgsim.Runtime.execute_exn ~config:Cgsim.Run_config.(with_lint `Off default) g
        ~sources:[ Cgsim.Io.of_f32_array [| 1.0; 1.0 |] ]
        ~sinks:[ sink ]
    in
    contents ()
  in
  let first = run_once () in
  let second = run_once () in
  Alcotest.(check bool) "stateful runs interfere" false (first = second)

(* ------------------------------------------------------------------ *)
(* Surfaces: runtime pre-flight, validate shim, reporter, dot, CGC     *)
(* ------------------------------------------------------------------ *)

let test_runtime_refuses_at_error () =
  Lint.install_runtime_hook ();
  let executed = ref false in
  let fb_settings = Cgsim.Settings.with_depth 4 Cgsim.Settings.stream in
  let fwd =
    Cgsim.Kernel.define ~realm:Cgsim.Kernel.Noextract ~name:"ana_ref_fwd"
      ~rates:[ "in", 64; "fb", 64; "out", 64 ]
      [
        Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
        Cgsim.Kernel.in_port "fb" Cgsim.Dtype.F32 ~settings:fb_settings;
        Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32;
      ]
      (fun _ -> executed := true)
  in
  let back =
    Cgsim.Kernel.define ~realm:Cgsim.Kernel.Noextract ~name:"ana_ref_back"
      ~rates:[ "in", 64; "fb", 64; "out", 64 ]
      [
        Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
        Cgsim.Kernel.out_port "fb" Cgsim.Dtype.F32;
        Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32;
      ]
      (fun _ -> executed := true)
  in
  Cgsim.Registry.register fwd;
  Cgsim.Registry.register back;
  let g = cycle_graph ~name:"ana_refused" (fwd, back) in
  (match
     Cgsim.Runtime.execute_exn ~config:Cgsim.Run_config.(with_lint `Error default) g
       ~sources:[ Cgsim.Io.of_f32_array [| 1.0 |] ]
       ~sinks:[ Cgsim.Io.null () ]
   with
   | _ -> Alcotest.fail "expected the pre-flight to refuse the graph"
   | exception Cgsim.Runtime.Runtime_error msg ->
     Alcotest.(check bool) "mentions the lint" true (contains "CG-E201" msg));
  Alcotest.(check bool) "no kernel body executed" false !executed

let test_validate_shim_names () =
  let a = stream_kernel "ana_shim_a" in
  let good =
    Cgsim.Builder.make ~name:"ana_shim" ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun bld conns ->
        let out = Cgsim.Builder.net bld Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bld a [ List.hd conns; out ]);
        [ out ])
  in
  (* Corrupt one net's dtype after the fact: the shim must name the
     kernel port, not print bare indices. *)
  let bad =
    {
      good with
      Cgsim.Serialized.nets =
        Array.map
          (fun (n : Cgsim.Serialized.net) ->
            if n.Cgsim.Serialized.net_id = 1 then { n with Cgsim.Serialized.dtype = Cgsim.Dtype.I16 }
            else n)
          good.Cgsim.Serialized.nets;
    }
  in
  Alcotest.(check bool) "structured code" true
    (has_code "CG-E002" (Cgsim.Serialized.validate_diags bad));
  match List.map Cgsim.Diagnostic.render (Cgsim.Serialized.validate_diags bad) with
  | [] -> Alcotest.fail "expected validation failure"
  | problems ->
    Alcotest.(check bool) "mentions the kernel instance" true
      (List.exists (contains "ana_shim_a_0") problems);
    Alcotest.(check bool) "no bare kernel indices" false
      (List.exists (contains "kernel#") problems)

let test_report_text_and_json () =
  let ks = cycle_kernels ~rates:8 ~fb_depth:2 "ana_rep" in
  let g = cycle_graph ~name:"ana_report" ks in
  let diags = Lint.run g in
  let text = Report.to_text diags in
  Alcotest.(check bool) "text carries the code" true (contains "CG-E201" text);
  Alcotest.(check bool) "text carries the summary" true (contains "1 error" text);
  let json = Obs.Json.to_string (Report.to_json ~graph:"ana_report" diags) in
  match Obs.Json.of_string json with
  | Error e -> Alcotest.failf "reporter emitted malformed JSON: %s" e
  | Ok doc ->
    Alcotest.(check (option string)) "schema" (Some "cgsim-lint/2")
      (Option.bind (Obs.Json.member "schema" doc) Obs.Json.to_str);
    Alcotest.(check bool) "suggested_capacities present" true
      (Obs.Json.member "suggested_capacities" doc <> None);
    Alcotest.(check bool) "predicted_bottleneck present" true
      (Obs.Json.member "predicted_bottleneck" doc <> None);
    let errors =
      match Option.bind (Obs.Json.member "counts" doc) (Obs.Json.member "error") with
      | Some j -> Obs.Json.to_float j
      | None -> None
    in
    Alcotest.(check (option (float 0.0))) "one error counted" (Some 1.0) errors

let test_dot_coloring () =
  let g = fanout_graph ~suppress:false "ana_dot" in
  let lint = Lint.run g in
  let dot = Extractor.Dot.of_graph ~lint g in
  Alcotest.(check bool) "warning edges colored" true (contains "color=orange" dot);
  let plain = Extractor.Dot.of_graph g in
  Alcotest.(check bool) "no coloring without lint" false (contains "color=orange" plain)

(* ------------------------------------------------------------------ *)
(* CGC end-to-end                                                      *)
(* ------------------------------------------------------------------ *)

let underbuffered_cgc =
  {|#include "cgsim.hpp"

COMPUTE_KERNEL(
    aie,
    cgc_loop_fwd,
    KernelWindowReadPort<float, 256> in,
    KernelWindowReadPort<float, 256, 4> fb,
    KernelWindowWritePort<float, 256> out
) {
    while (true) {
        for (int n = 0; n < 64; ++n) {
            float v = co_await in.get();
            float f = co_await fb.get();
            co_await out.put(v + f);
        }
    }
};

COMPUTE_KERNEL(
    aie,
    cgc_loop_back,
    KernelWindowReadPort<float, 256> in,
    KernelWindowWritePort<float, 256> fb,
    KernelWindowWritePort<float, 256> out
) {
    while (true) {
        for (int n = 0; n < 64; ++n) {
            float v = co_await in.get();
            co_await fb.put(v * 0.5f);
            co_await out.put(v);
        }
    }
};

[[extract_compute_graph]]
constexpr auto cgc_loopy = make_compute_graph_v<[](
    IoConnector<float> in
) {
    IoConnector<float> fb;
    IoConnector<float> mid;
    IoConnector<float> out;
    cgc_loop_fwd(in, fb, mid);
    cgc_loop_back(mid, fb, out);
    return std::make_tuple(out);
}>;
|}

let test_cgc_underbuffered_cycle () =
  let env = Cgc.Driver.analyze_string ~file:"underbuffered.cgc" underbuffered_cgc in
  match Cgc.Sema.graphs env with
  | [ g ] ->
    let serialized = Cgc.Consteval.eval_graph env g in
    let diags = Lint.run serialized in
    Alcotest.(check int) "exit status 2" 2 (D.exit_status diags);
    (match with_code "CG-E201" diags with
     | [ d ] ->
       Alcotest.(check bool) "names cycle kernels" true
         (List.mem "cgc_loop_fwd_0" d.D.kernels && List.mem "cgc_loop_back_0" d.D.kernels);
       (match d.D.loc with
        | Some span ->
          Alcotest.(check string) "source file" "underbuffered.cgc" span.Cgsim.Srcspan.file;
          Alcotest.(check bool) "positive line" true (span.Cgsim.Srcspan.line > 0)
        | None -> Alcotest.fail "deadlock finding lost its source range")
     | ds -> Alcotest.failf "expected one CG-E201, got %d" (List.length ds))
  | gs -> Alcotest.failf "expected one graph, got %d" (List.length gs)

let test_extractor_refuses_error_graphs () =
  match Extractor.Project.extract_string ~file:"underbuffered.cgc" underbuffered_cgc with
  | _ -> Alcotest.fail "expected Extract_error"
  | exception Extractor.Project.Extract_error msg ->
    Alcotest.(check bool) "mentions the deadlock" true (contains "CG-E201" msg)

let tapped_cgc =
  {|#include "cgsim.hpp"

COMPUTE_KERNEL(aie, cgc_tap_src, KernelReadPort<float> in, KernelWritePort<float> out) {
    while (true) { co_await out.put(co_await in.get()); }
};

COMPUTE_KERNEL(aie, cgc_tap_mon, KernelReadPort<float> in, KernelWritePort<float> out) {
    while (true) { co_await out.put(co_await in.get()); }
};

[[extract_compute_graph]]
constexpr auto cgc_tapped = make_compute_graph_v<[](
    IoConnector<float> in
) {
    IoConnector<float> mid;
    IoConnector<float> aux;
    cgc_tap_src(in, mid);
    cgc_tap_mon(mid, aux);
    return std::make_tuple(mid, aux);
}>;
|}

let test_extractor_embeds_warnings () =
  match Extractor.Project.extract_string ~file:"tapped.cgc" tapped_cgc with
  | [ p ] ->
    Alcotest.(check bool) "lint carries the tap warning" true
      (has_code "CG-W302" p.Extractor.Project.lint);
    let readme =
      List.find
        (fun f -> f.Extractor.Project.rel_path = "README.md")
        p.Extractor.Project.files
    in
    Alcotest.(check bool) "README embeds the warning" true
      (contains "CG-W302" readme.Extractor.Project.contents)
  | ps -> Alcotest.failf "expected one project, got %d" (List.length ps)

(* ------------------------------------------------------------------ *)
(* Shipped graphs stay clean                                           *)
(* ------------------------------------------------------------------ *)

let test_apps_lint_clean () =
  List.iter
    (fun (h : Apps.Harness.t) ->
      let diags = Lint.run (h.Apps.Harness.graph ()) in
      match D.max_severity diags with
      | Some D.Error ->
        Alcotest.failf "app %s has lint errors:\n%s" h.Apps.Harness.name (Report.to_text diags)
      | _ -> ())
    Apps.Harness.all

let test_apps_have_repetition_vectors () =
  (* The apps declare rates now; the solver should find every graph's
     steady state (all four are rate-consistent pipelines). *)
  List.iter
    (fun (h : Apps.Harness.t) ->
      let diags = Lint.run (h.Apps.Harness.graph ()) in
      Alcotest.(check bool)
        (h.Apps.Harness.name ^ " has no imbalance")
        false (has_code "CG-E101" diags))
    Apps.Harness.all

let test_examples_lint_clean () =
  Sys.readdir cgc_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cgc")
  |> List.iter (fun f ->
         let path = Filename.concat cgc_dir f in
         let env = Cgc.Driver.analyze_file path in
         List.iter
           (fun (g : Cgc.Ast.graph) ->
             let diags = Lint.run (Cgc.Consteval.eval_graph env g) in
             match D.max_severity diags with
             | Some D.Error ->
               Alcotest.failf "%s graph %s has lint errors:\n%s" f g.Cgc.Ast.g_name
                 (Report.to_text diags)
             | _ -> ())
           (Cgc.Sema.graphs env))

(* ------------------------------------------------------------------ *)
(* Srcspan plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let test_srcspan_compact_roundtrip () =
  let span =
    Cgsim.Srcspan.make ~file:"dir/with:colon.cgc" ~line:12 ~col:3 ~end_line:14 ~end_col:1 ()
  in
  match Cgsim.Srcspan.of_compact (Cgsim.Srcspan.to_compact span) with
  | Some back -> Alcotest.(check bool) "round-trips" true (Cgsim.Srcspan.equal span back)
  | None -> Alcotest.fail "compact form did not parse back"

let test_graph_text_src_roundtrip () =
  let env = Cgc.Driver.analyze_string ~file:"tapped.cgc" tapped_cgc in
  match Cgc.Sema.graphs env with
  | [ g ] ->
    let serialized = Cgc.Consteval.eval_graph env g in
    let text = Cgsim.Graph_text.to_string serialized in
    Alcotest.(check bool) "text carries src lines" true (contains "src tapped.cgc:" text);
    let back =
      match Cgsim.Graph_text.of_string text with
      | Ok back -> back
      | Error e -> Alcotest.failf "graph text did not parse back: %s" e
    in
    Alcotest.(check bool) "same topology" true
      (Cgsim.Serialized.equal_topology serialized back);
    Array.iteri
      (fun i (ki : Cgsim.Serialized.kernel_inst) ->
        Alcotest.(check bool)
          (Printf.sprintf "kernel %d src survives" i)
          true
          (Option.equal Cgsim.Srcspan.equal ki.Cgsim.Serialized.src
             back.Cgsim.Serialized.kernels.(i).Cgsim.Serialized.src))
      serialized.Cgsim.Serialized.kernels;
    Array.iteri
      (fun i (n : Cgsim.Serialized.net) ->
        Alcotest.(check bool)
          (Printf.sprintf "net %d src survives" i)
          true
          (Option.equal Cgsim.Srcspan.equal n.Cgsim.Serialized.src
             back.Cgsim.Serialized.nets.(i).Cgsim.Serialized.src))
      serialized.Cgsim.Serialized.nets
  | gs -> Alcotest.failf "expected one graph, got %d" (List.length gs)

let () =
  Alcotest.run "analysis"
    [
      ( "rates",
        [
          Alcotest.test_case "balanced pipeline" `Quick test_rates_balanced;
          Alcotest.test_case "unbalanced net" `Quick test_rates_unbalanced;
          Alcotest.test_case "zero against positive" `Quick test_rates_zero_against_positive;
          Alcotest.test_case "window-implied rates" `Quick test_rates_window_implied;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "under-buffered cycle" `Quick test_deadlock_underbuffered;
          Alcotest.test_case "buffered cycle passes" `Quick test_deadlock_buffered_ok;
          Alcotest.test_case "unknown rates warn" `Quick test_deadlock_unknown_rates;
          Alcotest.test_case "acyclic is silent" `Quick test_acyclic_no_findings;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "CG-I204 on under-buffered cycle" `Quick test_capacity_suggestion;
          Alcotest.test_case "quiet when buffered" `Quick test_capacity_quiet_when_buffered;
          Alcotest.test_case "quiet on acyclic" `Quick test_capacity_quiet_on_acyclic;
        ] );
      ( "throughput",
        [
          Alcotest.test_case "CG-I105 unit bottleneck" `Quick test_throughput_unit_bottleneck;
          Alcotest.test_case "measured ceiling" `Quick test_throughput_measured_ceiling;
          Alcotest.test_case "cycle is one stage" `Quick test_throughput_cycle_is_one_stage;
        ] );
      ( "hazards",
        [
          Alcotest.test_case "broadcast fan-out" `Quick test_hazard_fanout;
          Alcotest.test_case "spsc demotion" `Quick test_hazard_spsc_demotion;
          Alcotest.test_case "partial beat" `Quick test_hazard_partial_beat;
          Alcotest.test_case "suppression attr" `Quick test_suppression;
        ] );
      ( "pool-safety",
        [
          Alcotest.test_case "stateful flagged" `Quick test_pool_safety_flags;
          Alcotest.test_case "stateful spot check" `Quick test_stateful_spot_check;
        ] );
      ( "surfaces",
        [
          Alcotest.test_case "runtime refusal" `Quick test_runtime_refuses_at_error;
          Alcotest.test_case "validate shim naming" `Quick test_validate_shim_names;
          Alcotest.test_case "reporter text+json" `Quick test_report_text_and_json;
          Alcotest.test_case "dot coloring" `Quick test_dot_coloring;
        ] );
      ( "cgc",
        [
          Alcotest.test_case "under-buffered CGC cycle" `Quick test_cgc_underbuffered_cycle;
          Alcotest.test_case "extractor refuses errors" `Quick
            test_extractor_refuses_error_graphs;
          Alcotest.test_case "extractor embeds warnings" `Quick test_extractor_embeds_warnings;
        ] );
      ( "clean-graphs",
        [
          Alcotest.test_case "apps lint clean" `Quick test_apps_lint_clean;
          Alcotest.test_case "apps balanced" `Quick test_apps_have_repetition_vectors;
          Alcotest.test_case "examples lint clean" `Quick test_examples_lint_clean;
        ] );
      ( "srcspan",
        [
          Alcotest.test_case "compact round-trip" `Quick test_srcspan_compact_roundtrip;
          Alcotest.test_case "graph-text src round-trip" `Quick test_graph_text_src_roundtrip;
        ] );
    ]

(* Robustness stack tests: structured outcomes, deadlines, cancellation,
   fault injection, and pool supervision (retry + circuit breaker),
   including warm-vs-cold serving equivalence. *)

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Fixtures                                                           *)
(* ------------------------------------------------------------------ *)

let scale_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"robust_scale"
    [
      Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32;
    ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
      while true do
        Cgsim.Port.put_f32 o (2.0 *. Cgsim.Port.get_f32 i)
      done)

let boom_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"robust_boom"
    [
      Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32;
    ]
    (fun b ->
      ignore (Cgsim.Port.get_f32 (Cgsim.Kernel.rd b 0));
      ignore (Cgsim.Kernel.wr b 0);
      failwith "deliberate robustness failure")

(* Produces forever: the schedule stays live until a deadline stops it. *)
let fountain_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"robust_fountain"
    [ Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32 ]
    (fun b ->
      let o = Cgsim.Kernel.wr b 0 in
      while true do
        Cgsim.Port.put_f32 o 1.0
      done)

let () =
  Cgsim.Registry.register scale_kernel;
  Cgsim.Registry.register boom_kernel;
  Cgsim.Registry.register fountain_kernel

(* in -> robust_scale_0 -> robust_scale_1 -> out *)
let chain_graph () =
  Cgsim.Builder.make ~name:"robust_chain" ~inputs:[ "x", Cgsim.Dtype.F32 ] (fun b conns ->
      let mid = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      ignore (Cgsim.Builder.add_kernel b scale_kernel [ List.hd conns; mid ]);
      ignore (Cgsim.Builder.add_kernel b scale_kernel [ mid; out ]);
      [ out ])

let boom_graph () =
  Cgsim.Builder.make ~name:"robust_boom_graph" ~inputs:[ "x", Cgsim.Dtype.F32 ]
    (fun b conns ->
      let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      ignore (Cgsim.Builder.add_kernel b boom_kernel [ List.hd conns; out ]);
      [ out ])

let fountain_graph () =
  Cgsim.Builder.make ~name:"robust_fountain_graph" ~inputs:[] (fun b _ ->
      let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      ignore (Cgsim.Builder.add_kernel b fountain_kernel [ out ]);
      [ out ])

let chain_input n = Cgsim.Io.of_f32_array (Array.init n float_of_int)

(* ------------------------------------------------------------------ *)
(* Structured outcomes and graph-naming errors                        *)
(* ------------------------------------------------------------------ *)

let test_outcome_completed () =
  let sink, contents = Cgsim.Io.f32_buffer () in
  match Cgsim.Runtime.execute (chain_graph ()) ~sources:[ chain_input 4 ] ~sinks:[ sink ] with
  | Cgsim.Runtime.Completed _ ->
    Alcotest.(check (array (float 1e-6))) "output" [| 0.0; 4.0; 8.0; 12.0 |] (contents ())
  | o -> Alcotest.failf "expected Completed, got %a" Cgsim.Runtime.pp_outcome o

let test_kernel_failure_captured () =
  let sink = Cgsim.Io.null () in
  match
    Cgsim.Runtime.execute (boom_graph ()) ~sources:[ chain_input 4 ] ~sinks:[ sink ]
  with
  | Cgsim.Runtime.Kernel_failed f ->
    Alcotest.(check string) "graph named" "robust_boom_graph" f.Cgsim.Runtime.f_graph;
    Alcotest.(check string) "kernel named" "robust_boom_0" f.Cgsim.Runtime.f_kernel;
    (match f.Cgsim.Runtime.f_exn with
     | Failure msg -> Alcotest.(check string) "exn preserved" "deliberate robustness failure" msg
     | e -> Alcotest.failf "unexpected exn %s" (Printexc.to_string e));
    (* stats_exn turns it into a Runtime_error naming graph and kernel *)
    (match Cgsim.Runtime.stats_exn (Cgsim.Runtime.Kernel_failed f) with
     | exception Cgsim.Runtime.Runtime_error msg ->
       Alcotest.(check bool) ("names graph: " ^ msg) true (contains "robust_boom_graph" msg);
       Alcotest.(check bool) ("names kernel: " ^ msg) true (contains "robust_boom_0" msg)
     | _ -> Alcotest.fail "stats_exn must raise on Kernel_failed")
  | o -> Alcotest.failf "expected Kernel_failed, got %a" Cgsim.Runtime.pp_outcome o

let test_wiring_errors_name_graph () =
  (* Wrong source count is a caller bug: still raises, and the message
     names the graph. *)
  match Cgsim.Runtime.execute (chain_graph ()) ~sources:[] ~sinks:[ Cgsim.Io.null () ] with
  | exception Cgsim.Runtime.Runtime_error msg ->
    Alcotest.(check bool) ("names graph: " ^ msg) true (contains "robust_chain" msg)
  | _ -> Alcotest.fail "source count mismatch must raise"

(* ------------------------------------------------------------------ *)
(* Deadlines, fuel and cancellation                                   *)
(* ------------------------------------------------------------------ *)

let test_deadline_on_divergent_graph () =
  let config = Cgsim.Run_config.(with_deadline_ms 50.0 default) in
  match
    Cgsim.Runtime.execute ~config (fountain_graph ()) ~sources:[] ~sinks:[ Cgsim.Io.null () ]
  with
  | Cgsim.Runtime.Deadline_exceeded p ->
    Alcotest.(check string) "graph named" "robust_fountain_graph" p.Cgsim.Runtime.p_graph;
    (match p.Cgsim.Runtime.p_reason with
     | `Wall_clock -> ()
     | `Max_steps -> Alcotest.fail "expected a wall-clock stop")
  | o -> Alcotest.failf "expected Deadline_exceeded, got %a" Cgsim.Runtime.pp_outcome o

let test_deadline_stalled_names_parked () =
  (* A stalled (not busy) pipeline: the stall fault spins one fiber on
     yield, everyone downstream parks on empty queues; the progress
     snapshot must name them. *)
  let faults = Cgsim.Faults.(plan ~seed:3 [ stall_on ~kernel:"robust_scale_0" ~after:2 () ]) in
  let config =
    Cgsim.Run_config.(default |> with_deadline_ms 50.0 |> with_faults faults)
  in
  let sink = Cgsim.Io.null () in
  match
    Cgsim.Runtime.execute ~config (chain_graph ()) ~sources:[ chain_input 64 ] ~sinks:[ sink ]
  with
  | Cgsim.Runtime.Deadline_exceeded p ->
    Alcotest.(check bool) "parked snapshot non-empty" true (p.Cgsim.Runtime.p_parked <> []);
    Alcotest.(check bool) "downstream kernel parked" true
      (List.mem "robust_scale_1" p.Cgsim.Runtime.p_parked);
    let msg = Cgsim.Runtime.progress_message p in
    Alcotest.(check bool) ("message names parked: " ^ msg) true
      (contains "robust_scale_1" msg)
  | o -> Alcotest.failf "expected Deadline_exceeded, got %a" Cgsim.Runtime.pp_outcome o

let test_max_steps_budget () =
  let config = Cgsim.Run_config.(with_max_steps 10 default) in
  match
    Cgsim.Runtime.execute ~config (fountain_graph ()) ~sources:[] ~sinks:[ Cgsim.Io.null () ]
  with
  | Cgsim.Runtime.Deadline_exceeded p ->
    (match p.Cgsim.Runtime.p_reason with
     | `Max_steps -> ()
     | `Wall_clock -> Alcotest.fail "expected the step budget, not the clock")
  | o -> Alcotest.failf "expected Deadline_exceeded, got %a" Cgsim.Runtime.pp_outcome o

let test_cancel_mid_run () =
  (* Cooperative cancellation requested from inside a hook (as another
     domain would): the run winds down and reports Cancelled. *)
  let target = ref None in
  let reads = ref 0 in
  let hooks =
    {
      Cgsim.Runtime.no_hooks with
      Cgsim.Runtime.wrap_reader =
        (fun _inst _idx r ->
          {
            r with
            Cgsim.Port.r_get =
              (fun () ->
                incr reads;
                if !reads = 5 then Option.iter Cgsim.Runtime.cancel !target;
                r.Cgsim.Port.r_get ());
          });
    }
  in
  let config = Cgsim.Run_config.(with_hooks hooks default) in
  let t = Cgsim.Runtime.instantiate ~config (chain_graph ()) in
  target := Some t;
  (match Cgsim.Runtime.run t ~sources:[ chain_input 64 ] ~sinks:[ Cgsim.Io.null () ] with
   | Cgsim.Runtime.Cancelled -> ()
   | o -> Alcotest.failf "expected Cancelled, got %a" Cgsim.Runtime.pp_outcome o);
  Alcotest.(check string) "label" "cancelled"
    (Cgsim.Runtime.outcome_label Cgsim.Runtime.Cancelled)

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection                                      *)
(* ------------------------------------------------------------------ *)

let run_with_fault () =
  let faults =
    Cgsim.Faults.(plan ~seed:42 [ raise_on ~kernel:"robust_scale_0" ~after:3 ~fires:1 () ])
  in
  let config = Cgsim.Run_config.(with_faults faults default) in
  let outcome =
    Cgsim.Runtime.execute ~config (chain_graph ()) ~sources:[ chain_input 8 ]
      ~sinks:[ Cgsim.Io.null () ]
  in
  faults, outcome

let test_fault_raise_deterministic () =
  let faults, first = run_with_fault () in
  Alcotest.(check int) "exactly one injection" 1 (Cgsim.Faults.injected faults);
  let _, second = run_with_fault () in
  let signature = function
    | Cgsim.Runtime.Kernel_failed f ->
      (match f.Cgsim.Runtime.f_exn with
       | Cgsim.Faults.Injected _ -> f.Cgsim.Runtime.f_kernel
       | e -> Alcotest.failf "expected Injected, got %s" (Printexc.to_string e))
    | o -> Alcotest.failf "expected Kernel_failed, got %a" Cgsim.Runtime.pp_outcome o
  in
  Alcotest.(check string) "same seed, same victim" (signature first) (signature second);
  Alcotest.(check string) "victim is the matched kernel" "robust_scale_0" (signature first)

let test_fault_budget_recovers () =
  (* The fire budget is shared across instantiations of one plan: after
     the single armed raise has fired, the same plan runs clean — the
     transient-fault model retries rely on. *)
  let faults, first = run_with_fault () in
  (match first with
   | Cgsim.Runtime.Kernel_failed _ -> ()
   | o -> Alcotest.failf "first run must fail, got %a" Cgsim.Runtime.pp_outcome o);
  let config = Cgsim.Run_config.(with_faults faults default) in
  let sink, contents = Cgsim.Io.f32_buffer () in
  (match
     Cgsim.Runtime.execute ~config (chain_graph ()) ~sources:[ chain_input 8 ] ~sinks:[ sink ]
   with
   | Cgsim.Runtime.Completed _ -> ()
   | o -> Alcotest.failf "budget-exhausted run must complete, got %a" Cgsim.Runtime.pp_outcome o);
  Alcotest.(check (array (float 1e-6))) "clean output after budget"
    (Array.init 8 (fun i -> 4.0 *. float_of_int i))
    (contents ());
  Alcotest.(check int) "still one injection" 1 (Cgsim.Faults.injected faults)

let test_fault_delay_is_transparent () =
  (* Delays perturb the schedule, never the data. *)
  let faults = Cgsim.Faults.(plan ~seed:9 [ delay_on ~kernel:"*" ~after:2 ~yields:8 ~fires:4 () ]) in
  let config = Cgsim.Run_config.(with_faults faults default) in
  let sink, contents = Cgsim.Io.f32_buffer () in
  (match
     Cgsim.Runtime.execute ~config (chain_graph ()) ~sources:[ chain_input 16 ] ~sinks:[ sink ]
   with
   | Cgsim.Runtime.Completed _ -> ()
   | o -> Alcotest.failf "delays must not change the outcome: %a" Cgsim.Runtime.pp_outcome o);
  Alcotest.(check bool) "delays fired" true (Cgsim.Faults.injected faults > 0);
  Alcotest.(check (array (float 1e-6))) "output unchanged"
    (Array.init 16 (fun i -> 4.0 *. float_of_int i))
    (contents ())

let test_fault_seed_derived_activations () =
  (* Unspecified activation counts resolve deterministically from the
     seed: same seed, same plan description; different seed, different. *)
  let d1 = Cgsim.Faults.(describe (plan ~seed:5 [ raise_on ~kernel:"*" () ])) in
  let d2 = Cgsim.Faults.(describe (plan ~seed:5 [ raise_on ~kernel:"*" () ])) in
  Alcotest.(check (list string)) "same seed, same arming" d1 d2;
  Alcotest.(check int) "one armed spec" 1 (List.length d1)

(* ------------------------------------------------------------------ *)
(* Pool supervision: retry, deadline, circuit breaker                  *)
(* ------------------------------------------------------------------ *)

let pool_io contents r =
  let sink, c = Cgsim.Io.f32_buffer () in
  contents.(r) <- c;
  [ chain_input 8 ], [ sink ]

let test_pool_retry_then_succeed () =
  (* A twice-firing transient raise pinned to one kernel instance: the
     first request burns both fires across two failed attempts and
     completes on its third; the rest run clean.  Every final outcome is
     Completed and the stats show the recovery. *)
  let faults =
    Cgsim.Faults.(plan ~seed:11 [ raise_on ~kernel:"robust_scale_0" ~after:3 ~fires:2 () ])
  in
  let config =
    Cgsim.Run_config.(
      default |> with_retries 2 |> with_backoff ~base_ns:1e4 ~cap_ns:1e6 |> with_faults faults)
  in
  let requests = 4 in
  let contents = Array.make requests (fun () -> [||]) in
  let stats =
    Cgsim.Pool.run ~config ~domains:1 ~requests ~io:(pool_io contents) (chain_graph ())
  in
  Array.iter
    (fun (res : Cgsim.Pool.request_result) ->
      match res.Cgsim.Pool.outcome with
      | Cgsim.Runtime.Completed _ ->
        Alcotest.(check (array (float 1e-6)))
          (Printf.sprintf "req %d output" res.Cgsim.Pool.req_id)
          (Array.init 8 (fun i -> 4.0 *. float_of_int i))
          (contents.(res.Cgsim.Pool.req_id) ())
      | o ->
        Alcotest.failf "req %d must recover, got %a" res.Cgsim.Pool.req_id
          Cgsim.Runtime.pp_outcome o)
    stats.Cgsim.Pool.results;
  Alcotest.(check int) "two injections" 2 (Cgsim.Faults.injected faults);
  Alcotest.(check int) "two retry attempts" 2 stats.Cgsim.Pool.retries;
  Alcotest.(check int) "recovered on retry" 1 stats.Cgsim.Pool.counts.Cgsim.Pool.n_retried_ok;
  Alcotest.(check bool) "breaker stayed closed" false stats.Cgsim.Pool.breaker_tripped

let test_pool_deadline_divergent_graph () =
  (* The ISSUE acceptance shape: a divergent graph served with a 50 ms
     per-request deadline must come back Deadline_exceeded with a
     non-empty parked snapshot — and the pool must not hang. *)
  let faults = Cgsim.Faults.(plan ~seed:13 [ stall_on ~kernel:"robust_scale_0" ~after:2 ~fires:(-1) () ]) in
  let config =
    Cgsim.Run_config.(default |> with_deadline_ms 50.0 |> with_faults faults)
  in
  let requests = 2 in
  let contents = Array.make requests (fun () -> [||]) in
  let stats =
    Cgsim.Pool.run ~config ~domains:1 ~requests ~io:(pool_io contents) (chain_graph ())
  in
  Alcotest.(check int) "deadline on every request" requests
    stats.Cgsim.Pool.counts.Cgsim.Pool.n_deadline;
  Array.iter
    (fun (res : Cgsim.Pool.request_result) ->
      match res.Cgsim.Pool.outcome with
      | Cgsim.Runtime.Deadline_exceeded p ->
        Alcotest.(check bool)
          (Printf.sprintf "req %d parked snapshot non-empty" res.Cgsim.Pool.req_id)
          true
          (p.Cgsim.Runtime.p_parked <> [])
      | o ->
        Alcotest.failf "req %d expected Deadline_exceeded, got %a" res.Cgsim.Pool.req_id
          Cgsim.Runtime.pp_outcome o)
    stats.Cgsim.Pool.results

let test_pool_breaker_sheds () =
  (* Persistent failure: after the threshold of consecutive final
     failures the circuit opens and the remaining requests are shed
     without executing. *)
  let config = Cgsim.Run_config.(default |> with_breaker 2) in
  let requests = 6 in
  let stats =
    Cgsim.Pool.run ~config ~domains:1 ~requests
      ~io:(fun _ -> [ chain_input 4 ], [ Cgsim.Io.null () ])
      (boom_graph ())
  in
  Alcotest.(check bool) "breaker tripped" true stats.Cgsim.Pool.breaker_tripped;
  Alcotest.(check int) "threshold failures before opening" 2
    stats.Cgsim.Pool.counts.Cgsim.Pool.n_failed;
  Alcotest.(check int) "rest shed" (requests - 2) stats.Cgsim.Pool.counts.Cgsim.Pool.n_shed;
  Array.iter
    (fun (res : Cgsim.Pool.request_result) ->
      if res.Cgsim.Pool.shed then
        Alcotest.(check int)
          (Printf.sprintf "req %d shed without executing" res.Cgsim.Pool.req_id)
          0 res.Cgsim.Pool.attempts)
    stats.Cgsim.Pool.results

let test_pool_breaker_reset_by_success () =
  (* A threshold above the consecutive-failure count keeps the circuit
     closed: nothing is shed even though every request fails. *)
  let config = Cgsim.Run_config.(default |> with_breaker 10) in
  let stats =
    Cgsim.Pool.run ~config ~domains:1 ~requests:4
      ~io:(fun _ -> [ chain_input 4 ], [ Cgsim.Io.null () ])
      (boom_graph ())
  in
  Alcotest.(check bool) "under threshold: closed" false stats.Cgsim.Pool.breaker_tripped;
  Alcotest.(check int) "nothing shed" 0 stats.Cgsim.Pool.counts.Cgsim.Pool.n_shed

(* ------------------------------------------------------------------ *)
(* x86sim: watchdog deadline and failure outcomes                      *)
(* ------------------------------------------------------------------ *)

let test_x86_deadline_poisons () =
  let config = Cgsim.Run_config.(with_deadline_ms 100.0 default) in
  match
    X86sim.Sim.run ~config (fountain_graph ()) ~sources:[] ~sinks:[ Cgsim.Io.null () ]
  with
  | X86sim.Sim.Deadline_exceeded { graph; waiting; _ } ->
    Alcotest.(check string) "graph named" "robust_fountain_graph" graph;
    Alcotest.(check bool) "waiting threads named" true (waiting <> [])
  | o -> Alcotest.failf "expected Deadline_exceeded, got %s" (X86sim.Sim.outcome_label o)

let test_x86_failure_names_graph () =
  (match
     X86sim.Sim.run (boom_graph ()) ~sources:[ chain_input 4 ] ~sinks:[ Cgsim.Io.null () ]
   with
   | X86sim.Sim.Kernel_failed { graph; thread; _ } as o ->
     Alcotest.(check string) "graph named" "robust_boom_graph" graph;
     Alcotest.(check bool) "thread names the kernel" true (contains "robust_boom" thread);
     (match X86sim.Sim.stats_exn o with
      | exception X86sim.Sim.X86sim_error msg ->
        Alcotest.(check bool) ("names graph: " ^ msg) true (contains "robust_boom_graph" msg)
      | _ -> Alcotest.fail "stats_exn must raise on Kernel_failed")
   | o -> Alcotest.failf "expected Kernel_failed, got %s" (X86sim.Sim.outcome_label o))

(* ------------------------------------------------------------------ *)
(* Warm vs cold pool serving                                           *)
(* ------------------------------------------------------------------ *)

let test_pool_warm_matches_cold () =
  (* The warm path (reset instances from the cache) must produce exactly
     the outputs of the cold path (fresh instance per attempt). *)
  let requests = 4 in
  let g = chain_graph () in
  let run_pool config =
    let contents = Array.make requests (fun () -> [||]) in
    let stats = Cgsim.Pool.run ~config ~domains:1 ~requests ~io:(pool_io contents) g in
    Alcotest.(check int) "all completed" requests stats.Cgsim.Pool.counts.Cgsim.Pool.n_completed;
    stats, Array.map (fun c -> c ()) contents
  in
  Cgsim.Pool.clear_warm_cache ();
  let warm_stats, warm = run_pool Cgsim.Run_config.default in
  let _, cold = run_pool Cgsim.Run_config.(with_warm false default) in
  Alcotest.(check bool)
    "warm path reused instances" true
    (warm_stats.Cgsim.Pool.warm_hits > 0);
  Array.iteri
    (fun i wi -> Alcotest.(check (array (float 0.0))) (Printf.sprintf "req %d" i) cold.(i) wi)
    warm

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "robust"
    [
      ( "outcomes",
        [
          Alcotest.test_case "completed" `Quick test_outcome_completed;
          Alcotest.test_case "kernel failure captured" `Quick test_kernel_failure_captured;
          Alcotest.test_case "wiring errors name graph" `Quick test_wiring_errors_name_graph;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "divergent graph stops" `Quick test_deadline_on_divergent_graph;
          Alcotest.test_case "stalled names parked" `Quick test_deadline_stalled_names_parked;
          Alcotest.test_case "max-steps budget" `Quick test_max_steps_budget;
          Alcotest.test_case "cancel mid-run" `Quick test_cancel_mid_run;
        ] );
      ( "faults",
        [
          Alcotest.test_case "raise is deterministic" `Quick test_fault_raise_deterministic;
          Alcotest.test_case "budget then recovery" `Quick test_fault_budget_recovers;
          Alcotest.test_case "delay is transparent" `Quick test_fault_delay_is_transparent;
          Alcotest.test_case "seeded arming" `Quick test_fault_seed_derived_activations;
        ] );
      ( "pool-supervision",
        [
          Alcotest.test_case "retry then succeed" `Quick test_pool_retry_then_succeed;
          Alcotest.test_case "deadline on divergent" `Quick test_pool_deadline_divergent_graph;
          Alcotest.test_case "breaker opens and sheds" `Quick test_pool_breaker_sheds;
          Alcotest.test_case "closed under threshold" `Quick test_pool_breaker_reset_by_success;
        ] );
      ( "x86sim",
        [
          Alcotest.test_case "watchdog deadline" `Quick test_x86_deadline_poisons;
          Alcotest.test_case "failure names graph" `Quick test_x86_failure_names_graph;
        ] );
      ( "warm-pool",
        [
          Alcotest.test_case "warm == cold outputs" `Quick test_pool_warm_matches_cold;
        ] );
    ]

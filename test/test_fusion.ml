(* Operator-fusion tests: chain discovery on the serialized graph, the
   CG-I103 lint surface, transparent runtime fallback on bogus
   proposals, fused==unfused output equivalence — on the four evaluation
   apps under every fast-path configuration and on randomized
   rate-matched SPSC chains. *)

module R = Cgsim.Runtime
module F = Analysis.Fusion
module D = Cgsim.Diagnostic

(* ------------------------------------------------------------------ *)
(* Fixtures: rate-matched scale kernels, memoized by (rate, factor)    *)
(* ------------------------------------------------------------------ *)

let kernel_cache : (int * int, Cgsim.Kernel.t) Hashtbl.t = Hashtbl.create 16

(* Multiply each element of a [rate]-wide window by [factor].  Kernels
   are interned per (rate, factor): the registry holds one definition no
   matter how many graphs or qcheck trials use the shape. *)
let scale_kernel ~rate ~factor =
  match Hashtbl.find_opt kernel_cache (rate, factor) with
  | Some k -> k
  | None ->
    let name = Printf.sprintf "fz_scale_r%d_f%d" rate factor in
    let k =
      Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name ~pure:true ~stateless:true
        ~rates:[ "in", rate; "out", rate ]
        [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
          Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32 ]
        (fun b ->
          let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
          let f = float_of_int factor in
          while true do
            let w = Cgsim.Port.get_window_f32 i rate in
            for j = 0 to rate - 1 do
              w.(j) <- w.(j) *. f
            done;
            Cgsim.Port.put_window_f32 o w
          done)
    in
    Cgsim.Registry.register k;
    Hashtbl.add kernel_cache (rate, factor) k;
    k

(* in -> scale f0 -> scale f1 -> ... -> out, all at one rate. *)
let chain_graph ~name ~rate factors =
  let ks = List.map (fun f -> scale_kernel ~rate ~factor:f) factors in
  Cgsim.Builder.make ~name ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun b conns ->
      let last =
        List.fold_left
          (fun src k ->
            let dst = Cgsim.Builder.net b Cgsim.Dtype.F32 in
            ignore (Cgsim.Builder.add_kernel b k [ src; dst ]);
            dst)
          (List.hd conns) ks
      in
      [ last ])

(* A two-output splitter: any chain must stop at it. *)
let split_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"fz_split" ~pure:true ~stateless:true
    ~rates:[ "in", 1; "hi", 1; "lo", 1 ]
    [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
      Cgsim.Kernel.out_port "hi" Cgsim.Dtype.F32;
      Cgsim.Kernel.out_port "lo" Cgsim.Dtype.F32 ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 in
      let hi = Cgsim.Kernel.wr b 0 and lo = Cgsim.Kernel.wr b 1 in
      while true do
        let v = Cgsim.Port.get_f32 i in
        Cgsim.Port.put_f32 hi v;
        Cgsim.Port.put_f32 lo v
      done)

let add_kernel_2in =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"fz_add2" ~pure:true ~stateless:true
    ~rates:[ "a", 1; "b", 1; "out", 1 ]
    [ Cgsim.Kernel.in_port "a" Cgsim.Dtype.F32;
      Cgsim.Kernel.in_port "b" Cgsim.Dtype.F32;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32 ]
    (fun b ->
      let a = Cgsim.Kernel.rd b 0 and bb = Cgsim.Kernel.rd b 1 in
      let o = Cgsim.Kernel.wr b 0 in
      while true do
        Cgsim.Port.put_f32 o (Cgsim.Port.get_f32 a +. Cgsim.Port.get_f32 bb)
      done)

let () =
  Cgsim.Registry.register split_kernel;
  Cgsim.Registry.register add_kernel_2in

(* split -> (scale, scale) -> add: diamond, no SPSC-exclusive interior hop. *)
let diamond_graph () =
  let s2 = scale_kernel ~rate:1 ~factor:2 and s3 = scale_kernel ~rate:1 ~factor:3 in
  Cgsim.Builder.make ~name:"fz_diamond" ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun b conns ->
      let hi = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      let lo = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      let hi2 = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      let lo2 = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      ignore (Cgsim.Builder.add_kernel b split_kernel [ List.hd conns; hi; lo ]);
      ignore (Cgsim.Builder.add_kernel b s2 [ hi; hi2 ]);
      ignore (Cgsim.Builder.add_kernel b s3 [ lo; lo2 ]);
      ignore (Cgsim.Builder.add_kernel b add_kernel_2in [ hi2; lo2; out ]);
      [ out ])

(* ------------------------------------------------------------------ *)
(* Running helpers                                                    *)
(* ------------------------------------------------------------------ *)

let run_chain ~config g input =
  let inst = R.new_instance (R.compile ~config g) in
  let sink, contents = Cgsim.Io.f32_buffer () in
  (match R.run inst ~sources:[ Cgsim.Io.of_f32_array input ] ~sinks:[ sink ] with
   | R.Completed _ -> ()
   | o -> Alcotest.failf "expected Completed, got %a" R.pp_outcome o);
  contents ()

let floats_equal msg (a : float array) (b : float array) =
  Alcotest.(check int) (msg ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Float.equal x b.(i)) then
        Alcotest.failf "%s: element %d differs: %h vs %h" msg i x b.(i))
    a

(* ------------------------------------------------------------------ *)
(* Chain discovery                                                    *)
(* ------------------------------------------------------------------ *)

let test_discovers_linear_chain () =
  let g = chain_graph ~name:"fz_linear3" ~rate:4 [ 2; 3; 5 ] in
  match F.chains g with
  | [ [ a; b; c ] ] ->
    let name k = g.Cgsim.Serialized.kernels.(k).Cgsim.Serialized.inst_name in
    Alcotest.(check bool) "upstream first" true
      (String.length (name a) > 0 && String.length (name b) > 0 && String.length (name c) > 0)
  | chains ->
    Alcotest.failf "expected one 3-kernel chain, got %d chains" (List.length chains)

let test_no_chain_across_fanout () =
  let g = diamond_graph () in
  (* Each interior hop either leaves a 2-output writer or enters a
     2-input reader, so nothing is exclusive end to end. *)
  Alcotest.(check int) "no chains in diamond" 0 (List.length (F.chains g))

(* 2:1 decimator — the rate-changing piece that makes a diamond
   unbalanceable when only one branch decimates. *)
let dec_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"fz_dec" ~pure:true ~stateless:true
    ~rates:[ "in", 2; "out", 1 ]
    [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32 ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
      while true do
        let v = Cgsim.Port.get_f32 i in
        ignore (Cgsim.Port.get_f32 i);
        Cgsim.Port.put_f32 o v
      done)

let () = Cgsim.Registry.register dec_kernel

let test_no_chain_on_rate_mismatch () =
  (* One fusible two-kernel run next to a diamond whose branches
     disagree (one side decimates 2:1): the balance solve errors, so
     discovery proposes nothing — not even the clean-looking chain. *)
  let s2 = scale_kernel ~rate:1 ~factor:2 and s3 = scale_kernel ~rate:1 ~factor:3 in
  let g =
    Cgsim.Builder.make ~name:"fz_mismatch"
      ~inputs:[ "a", Cgsim.Dtype.F32; "b", Cgsim.Dtype.F32 ]
      (fun bb conns ->
        let a_in, b_in =
          match conns with [ a; b ] -> a, b | _ -> assert false
        in
        (* component 1: a -> s2 -> s3 -> out1 (shape-wise fusible) *)
        let mid = Cgsim.Builder.net bb Cgsim.Dtype.F32 in
        let out1 = Cgsim.Builder.net bb Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bb s2 [ a_in; mid ]);
        ignore (Cgsim.Builder.add_kernel bb s3 [ mid; out1 ]);
        (* component 2: b -> split -> (dec | pass-through) -> add -> out2 *)
        let hi = Cgsim.Builder.net bb Cgsim.Dtype.F32 in
        let lo = Cgsim.Builder.net bb Cgsim.Dtype.F32 in
        let hi2 = Cgsim.Builder.net bb Cgsim.Dtype.F32 in
        let out2 = Cgsim.Builder.net bb Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel bb split_kernel [ b_in; hi; lo ]);
        ignore (Cgsim.Builder.add_kernel bb dec_kernel [ hi; hi2 ]);
        ignore (Cgsim.Builder.add_kernel bb add_kernel_2in [ hi2; lo; out2 ]);
        [ out1; out2 ])
  in
  Alcotest.(check bool) "rate solve rejects" true
    (D.max_severity (Analysis.Rates.analyze g) = Some D.Error);
  Alcotest.(check int) "no chains" 0 (List.length (F.chains g))

let test_two_kernel_chain_minimum () =
  let g = chain_graph ~name:"fz_linear2" ~rate:1 [ 2; 3 ] in
  match F.chains g with
  | [ [ _; _ ] ] -> ()
  | chains -> Alcotest.failf "expected one 2-kernel chain, got %d" (List.length chains)

(* ------------------------------------------------------------------ *)
(* CG-I103 lint surface                                               *)
(* ------------------------------------------------------------------ *)

let test_cg_i103_emitted () =
  let g = chain_graph ~name:"fz_lintable" ~rate:2 [ 2; 3; 4 ] in
  match F.analyze g with
  | [ d ] ->
    Alcotest.(check string) "code" "CG-I103" d.D.code;
    Alcotest.(check bool) "info severity" true (d.D.severity = D.Info);
    Alcotest.(check bool) "names the members" true
      (List.length d.D.kernels = 3)
  | ds -> Alcotest.failf "expected one CG-I103, got %d diagnostics" (List.length ds)

let test_cg_i103_in_lint_driver () =
  let g = chain_graph ~name:"fz_lintable2" ~rate:2 [ 2; 3 ] in
  let codes = List.map (fun d -> d.D.code) (Analysis.Lint.run g) in
  Alcotest.(check bool) "lint driver surfaces CG-I103" true (List.mem "CG-I103" codes)

let test_clean_graph_no_i103 () =
  let g = diamond_graph () in
  Alcotest.(check int) "no fusion info on diamond" 0 (List.length (F.analyze g))

(* CG-I103 names the chain's interior nets, so the standard
   lint.suppress machinery applies to it like every other finding — the
   regression this guards is the pass attaching no nets, which made the
   attribute a silent no-op for fusion hints. *)
let chain_with_suppress ~name ~spec factors =
  let ks = List.map (fun f -> scale_kernel ~rate:2 ~factor:f) factors in
  Cgsim.Builder.make ~name ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun b conns ->
      let _, interior =
        List.fold_left
          (fun (src, nets) k ->
            let dst = Cgsim.Builder.net b Cgsim.Dtype.F32 in
            ignore (Cgsim.Builder.add_kernel b k [ src; dst ]);
            dst, dst :: nets)
          (List.hd conns, []) ks
      in
      (match interior with
       | last :: rest ->
         (* [rest] = the chain's interior hops ([last] is the output). *)
         List.iteri
           (fun i n ->
             match spec i with
             | Some s -> Cgsim.Builder.attach_attributes b n [ Cgsim.Attr.s "lint.suppress" s ]
             | None -> ())
           (List.rev rest);
         [ last ]
       | [] -> []))

let test_cg_i103_suppressed () =
  let g = chain_with_suppress ~name:"fz_lintsup" ~spec:(fun _ -> Some "CG-I103") [ 2; 3 ] in
  Alcotest.(check bool) "pass itself still reports the chain" true
    (List.exists (fun (d : D.t) -> d.D.code = "CG-I103") (F.analyze g));
  let codes = List.map (fun (d : D.t) -> d.D.code) (Analysis.Lint.run g) in
  Alcotest.(check bool) "lint driver honors lint.suppress" false (List.mem "CG-I103" codes)

let test_cg_i103_partial_suppress_still_fires () =
  (* Two interior nets, only one suppressed: the finding must survive. *)
  let g =
    chain_with_suppress ~name:"fz_lintsup2"
      ~spec:(fun i -> if i = 0 then Some "CG-I103" else None)
      [ 2; 3; 4 ]
  in
  let codes = List.map (fun (d : D.t) -> d.D.code) (Analysis.Lint.run g) in
  Alcotest.(check bool) "partially suppressed chain still reported" true
    (List.mem "CG-I103" codes)

(* ------------------------------------------------------------------ *)
(* Runtime fallback                                                   *)
(* ------------------------------------------------------------------ *)

let with_hook hook f =
  Cgsim.Runtime.set_fusion_hook hook;
  Fun.protect ~finally:(fun () -> Cgsim.Runtime.set_fusion_hook F.chains) f

let fallback_input = Array.init 64 (fun i -> float_of_int i)

let expected_scaled factors input =
  let f = List.fold_left (fun acc x -> acc *. float_of_int x) 1.0 factors in
  Array.map (fun x -> Cgsim.Value.round_f32 (Cgsim.Value.round_f32 x *. f)) input

(* A proposal the runtime must reject (members not adjacent on an
   exclusive hop) falls back to per-kernel fibers, transparently. *)
let test_bogus_proposal_falls_back () =
  let factors = [ 2; 3; 5 ] in
  let g = chain_graph ~name:"fz_bogus" ~rate:4 factors in
  with_hook
    (fun _ -> [ [ 0; 2 ] ])
    (fun () ->
      let out = run_chain ~config:Cgsim.Run_config.default g fallback_input in
      floats_equal "bogus proposal output" (expected_scaled factors fallback_input) out)

let test_out_of_range_proposal_falls_back () =
  let factors = [ 2; 3 ] in
  let g = chain_graph ~name:"fz_oor" ~rate:2 factors in
  with_hook
    (fun _ -> [ [ 7; 9 ] ])
    (fun () ->
      let out = run_chain ~config:Cgsim.Run_config.default g fallback_input in
      floats_equal "out-of-range proposal output" (expected_scaled factors fallback_input) out)

let test_fuse_off_ignores_hook () =
  let factors = [ 2; 3; 5 ] in
  let g = chain_graph ~name:"fz_off" ~rate:4 factors in
  let hits = ref 0 in
  with_hook
    (fun g ->
      incr hits;
      F.chains g)
    (fun () ->
      let config = Cgsim.Run_config.(with_fuse false default) in
      let out = run_chain ~config g fallback_input in
      floats_equal "fuse-off output" (expected_scaled factors fallback_input) out;
      Alcotest.(check int) "hook not consulted with fuse off" 0 !hits)

(* ------------------------------------------------------------------ *)
(* Equivalence: apps x fast-path configurations                       *)
(* ------------------------------------------------------------------ *)

let fastpath_configs =
  Cgsim.Run_config.
    [
      "default", default;
      "fuse-off", with_fuse false default;
      "unboxed-off", with_unboxed false default;
      ( "all-fast-paths-off",
        default |> with_spsc false |> with_block_io false |> with_fuse false
        |> with_unboxed false );
    ]

let values_equal msg (a : Cgsim.Value.t list) (b : Cgsim.Value.t list) =
  Alcotest.(check int) (msg ^ ": output count") (List.length a) (List.length b);
  Alcotest.(check bool) (msg ^ ": outputs equal") true
    (List.for_all2 Cgsim.Value.equal a b)

let run_app_checked msg (h : Apps.Harness.t) ~config ~reps =
  let sinks, contents = h.Apps.Harness.make_sinks () in
  let inst = R.new_instance (R.compile ~config (h.Apps.Harness.graph ())) in
  (match R.run inst ~sources:(h.Apps.Harness.sources ~reps) ~sinks with
   | R.Completed _ -> ()
   | o -> Alcotest.failf "%s: expected Completed, got %a" msg R.pp_outcome o);
  let out = contents () in
  (match h.Apps.Harness.check ~reps out with
   | Ok () -> ()
   | Error e -> Alcotest.failf "%s: %s" msg e);
  out

(* Every app produces reference-correct and bit-identical output under
   all four configurations: fusion and the unboxed plane are pure
   optimizations. *)
let test_apps_equivalent_across_configs () =
  List.iter
    (fun (h : Apps.Harness.t) ->
      let baseline =
        run_app_checked
          (h.Apps.Harness.name ^ "/baseline")
          h
          ~config:(snd (List.nth fastpath_configs 3))
          ~reps:2
      in
      List.iter
        (fun (cname, config) ->
          let label = Printf.sprintf "%s/%s" h.Apps.Harness.name cname in
          let out = run_app_checked label h ~config ~reps:2 in
          values_equal label baseline out)
        fastpath_configs)
    Apps.Harness.all

(* ------------------------------------------------------------------ *)
(* Equivalence: randomized rate-matched SPSC chains (qcheck)          *)
(* ------------------------------------------------------------------ *)

(* One trial: derive a chain shape from a seeded Workloads.Prng, run it
   under all four configurations, require bit-identical output. *)
let random_chain_trial seed =
  let rng = Workloads.Prng.create ~seed in
  let n = Workloads.Prng.int_range rng ~lo:2 ~hi:5 in
  let rate = 1 lsl Workloads.Prng.int_range rng ~lo:0 ~hi:3 in
  let factors = List.init n (fun _ -> Workloads.Prng.int_range rng ~lo:1 ~hi:4) in
  let windows = Workloads.Prng.int_range rng ~lo:1 ~hi:8 in
  let input =
    Array.init (rate * windows) (fun _ ->
        Workloads.Prng.float_range rng ~lo:(-100.0) ~hi:100.0)
  in
  let g =
    chain_graph
      ~name:(Printf.sprintf "fz_rand_%d_%d" rate n)
      ~rate factors
  in
  let out_of (_, config) = run_chain ~config g input in
  let baseline = out_of (List.hd fastpath_configs) in
  List.for_all
    (fun cfg ->
      let out = out_of cfg in
      Array.length out = Array.length baseline
      && Array.for_all2 Float.equal out baseline)
    (List.tl fastpath_configs)

let qcheck_random_chains =
  QCheck.Test.make ~count:25 ~name:"random rate-matched chains: fused == unfused"
    QCheck.(int_bound 1_000_000)
    random_chain_trial

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fusion"
    [
      ( "discovery",
        [
          Alcotest.test_case "linear chain found" `Quick test_discovers_linear_chain;
          Alcotest.test_case "fan-out breaks chains" `Quick test_no_chain_across_fanout;
          Alcotest.test_case "rate mismatch rejected" `Quick test_no_chain_on_rate_mismatch;
          Alcotest.test_case "two kernels suffice" `Quick test_two_kernel_chain_minimum;
        ] );
      ( "lint",
        [
          Alcotest.test_case "CG-I103 emitted" `Quick test_cg_i103_emitted;
          Alcotest.test_case "CG-I103 via lint driver" `Quick test_cg_i103_in_lint_driver;
          Alcotest.test_case "no info without chains" `Quick test_clean_graph_no_i103;
          Alcotest.test_case "CG-I103 respects lint.suppress" `Quick test_cg_i103_suppressed;
          Alcotest.test_case "partial suppress still fires" `Quick
            test_cg_i103_partial_suppress_still_fires;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "bogus proposal" `Quick test_bogus_proposal_falls_back;
          Alcotest.test_case "out-of-range proposal" `Quick test_out_of_range_proposal_falls_back;
          Alcotest.test_case "fuse off ignores hook" `Quick test_fuse_off_ignores_hook;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "apps x fast-path configs" `Quick
            test_apps_equivalent_across_configs;
          QCheck_alcotest.to_alcotest qcheck_random_chains;
        ] );
    ]

(* Tests for the thread-per-kernel functional simulator and its
   domain-safe broadcast queues. *)

let test_tqueue_spsc () =
  let q = X86sim.Tqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:4 () in
  let p = X86sim.Tqueue.add_producer q in
  let c = X86sim.Tqueue.add_consumer q in
  let got = ref [] in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to 200 do
          X86sim.Tqueue.put p (Cgsim.Value.Int i)
        done;
        X86sim.Tqueue.producer_done p)
  in
  let consumer =
    Domain.spawn (fun () ->
        try
          while true do
            got := Cgsim.Value.to_int (X86sim.Tqueue.get c) :: !got
          done
        with Cgsim.Sched.End_of_stream -> ())
  in
  Domain.join producer;
  Domain.join consumer;
  Alcotest.(check (list int)) "fifo across domains" (List.init 200 (fun i -> i + 1))
    (List.rev !got)

let test_tqueue_broadcast () =
  let q = X86sim.Tqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:2 () in
  let p = X86sim.Tqueue.add_producer q in
  let c1 = X86sim.Tqueue.add_consumer q in
  let c2 = X86sim.Tqueue.add_consumer q in
  let drain c acc =
    Domain.spawn (fun () ->
        try
          while true do
            acc := Cgsim.Value.to_int (X86sim.Tqueue.get c) :: !acc
          done
        with Cgsim.Sched.End_of_stream -> ())
  in
  let a1 = ref [] and a2 = ref [] in
  let d1 = drain c1 a1 and d2 = drain c2 a2 in
  for i = 1 to 100 do
    X86sim.Tqueue.put p (Cgsim.Value.Int i)
  done;
  X86sim.Tqueue.producer_done p;
  Domain.join d1;
  Domain.join d2;
  let expect = List.init 100 (fun i -> i + 1) in
  Alcotest.(check (list int)) "c1 complete" expect (List.rev !a1);
  Alcotest.(check (list int)) "c2 complete" expect (List.rev !a2)

let test_tqueue_close_then_get () =
  let q = X86sim.Tqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:2 () in
  let p = X86sim.Tqueue.add_producer q in
  let c = X86sim.Tqueue.add_consumer q in
  X86sim.Tqueue.put p (Cgsim.Value.Int 1);
  X86sim.Tqueue.producer_done p;
  Alcotest.(check int) "drains" 1 (Cgsim.Value.to_int (X86sim.Tqueue.get c));
  match X86sim.Tqueue.get c with
  | exception Cgsim.Sched.End_of_stream -> ()
  | _ -> Alcotest.fail "closed+drained queue must raise End_of_stream"

let test_tqueue_put_after_done () =
  let q = X86sim.Tqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:2 () in
  let p = X86sim.Tqueue.add_producer q in
  X86sim.Tqueue.producer_done p;
  match X86sim.Tqueue.put p (Cgsim.Value.Int 1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "put after producer_done must be rejected"

let test_tqueue_dtype_checked () =
  let q = X86sim.Tqueue.create ~name:"q" ~dtype:Cgsim.Dtype.F32 ~capacity:2 () in
  let p = X86sim.Tqueue.add_producer q in
  match X86sim.Tqueue.put p (Cgsim.Value.Int 3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dtype mismatch must be rejected"

let test_tqueue_block_concurrent_producers () =
  (* Two domains push blocks through a small ring concurrently; every
     element arrives and each producer's stream stays ordered. *)
  let q = X86sim.Tqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:8 () in
  let p1 = X86sim.Tqueue.add_producer q in
  let p2 = X86sim.Tqueue.add_producer q in
  let c = X86sim.Tqueue.add_consumer q in
  let produce p base =
    Domain.spawn (fun () ->
        for b = 0 to 9 do
          X86sim.Tqueue.put_block p
            (Array.init 20 (fun i -> Cgsim.Value.Int (base + (b * 20) + i)))
        done;
        X86sim.Tqueue.producer_done p)
  in
  let got = ref [] in
  let consumer =
    Domain.spawn (fun () ->
        try
          while true do
            Array.iter
              (fun v -> got := Cgsim.Value.to_int v :: !got)
              (X86sim.Tqueue.get_some c ~max:16)
          done
        with Cgsim.Sched.End_of_stream -> ())
  in
  let d1 = produce p1 0 and d2 = produce p2 1000 in
  Domain.join d1;
  Domain.join d2;
  Domain.join consumer;
  let all = List.rev !got in
  Alcotest.(check int) "everything arrived" 400 (List.length all);
  let stream pred = List.filter pred all in
  Alcotest.(check (list int)) "p1 order kept"
    (List.init 200 (fun i -> i))
    (stream (fun x -> x < 1000));
  Alcotest.(check (list int)) "p2 order kept"
    (List.init 200 (fun i -> 1000 + i))
    (stream (fun x -> x >= 1000))

let test_tqueue_block_larger_than_capacity () =
  let q = X86sim.Tqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:4 () in
  let p = X86sim.Tqueue.add_producer q in
  let c = X86sim.Tqueue.add_consumer q in
  let producer =
    Domain.spawn (fun () ->
        X86sim.Tqueue.put_block p (Array.init 64 (fun i -> Cgsim.Value.Int (i + 1)));
        X86sim.Tqueue.producer_done p)
  in
  let got = X86sim.Tqueue.get_block c 64 in
  Domain.join producer;
  Alcotest.(check (list int)) "streams through"
    (List.init 64 (fun i -> i + 1))
    (Array.to_list (Array.map Cgsim.Value.to_int got))

let test_tqueue_block_eos_midblock () =
  let q = X86sim.Tqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:8 () in
  let p = X86sim.Tqueue.add_producer q in
  let c = X86sim.Tqueue.add_consumer q in
  X86sim.Tqueue.put_block p (Array.init 5 (fun i -> Cgsim.Value.Int i));
  X86sim.Tqueue.producer_done p;
  (match X86sim.Tqueue.get_block c 8 with
   | exception Cgsim.Sched.End_of_stream -> ()
   | _ -> Alcotest.fail "closing mid-block must raise End_of_stream");
  Alcotest.(check int) "partial block was consumed" 0 (X86sim.Tqueue.available c)

let test_sim_io_count_mismatch () =
  let g = Apps.Bitonic.graph () in
  match X86sim.Sim.run_exn g ~sources:[] ~sinks:[ Cgsim.Io.null () ] with
  | exception X86sim.Sim.X86sim_error _ -> ()
  | _ -> Alcotest.fail "source count mismatch must be rejected"

let test_sim_kernel_failure_reported () =
  let boom =
    Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"x86_boom"
      [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32; Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32 ]
      (fun b ->
        ignore (Cgsim.Port.get (Cgsim.Kernel.rd b 0));
        failwith "deliberate")
  in
  Cgsim.Registry.register boom;
  let g =
    Cgsim.Builder.make ~name:"boom_graph" ~inputs:[ "x", Cgsim.Dtype.F32 ] (fun b conns ->
        let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel b boom [ List.hd conns; out ]);
        [ out ])
  in
  match
    X86sim.Sim.run_exn g ~sources:[ Cgsim.Io.of_f32_array [| 1.0; 2.0 |] ]
      ~sinks:[ Cgsim.Io.null () ]
  with
  | exception X86sim.Sim.X86sim_error _ -> ()
  | _ -> Alcotest.fail "kernel failures must be re-raised after the join"

let test_sim_thread_count () =
  (* farrow: 2 kernels + 2 sources (samples + rtp) + 1 sink = 5 threads *)
  let h = Apps.Harness.farrow in
  let sinks, _ = h.Apps.Harness.make_sinks () in
  let stats =
    X86sim.Sim.run_exn (h.Apps.Harness.graph ()) ~sources:(h.Apps.Harness.sources ~reps:1) ~sinks
  in
  Alcotest.(check int) "threads" 5 stats.X86sim.Sim.threads

let prop_x86sim_random_chain =
  QCheck.Test.make ~name:"x86sim: random chains match cgsim" ~count:10
    QCheck.(pair (int_range 1 4) (list_of_size (QCheck.Gen.int_range 1 32) (int_range (-50) 50)))
    (fun (depth, xs) ->
      let scale = Cgsim.Registry.find_exn "test_x86_scale" in
      let graph () =
        Cgsim.Builder.make ~name:"xchain" ~inputs:[ "x", Cgsim.Dtype.F32 ] (fun b conns ->
            let rec build prev n =
              if n = 0 then prev
              else begin
                let next = Cgsim.Builder.net b Cgsim.Dtype.F32 in
                ignore (Cgsim.Builder.add_kernel b scale [ prev; next ]);
                build next (n - 1)
              end
            in
            [ build (List.hd conns) depth ])
      in
      let input () = Cgsim.Io.of_f32_array (Array.of_list (List.map float_of_int xs)) in
      let sink1, out1 = Cgsim.Io.f32_buffer () in
      let _ = Cgsim.Runtime.execute_exn (graph ()) ~sources:[ input () ] ~sinks:[ sink1 ] in
      let sink2, out2 = Cgsim.Io.f32_buffer () in
      let _ = X86sim.Sim.run_exn (graph ()) ~sources:[ input () ] ~sinks:[ sink2 ] in
      out1 () = out2 ())

let () =
  Cgsim.Registry.register
    (Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"test_x86_scale"
       [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32; Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32 ]
       (fun b ->
         let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
         while true do
           Cgsim.Port.put_f32 o (2.0 *. Cgsim.Port.get_f32 i)
         done))

let () =
  Alcotest.run "x86sim"
    [
      ( "tqueue",
        [
          Alcotest.test_case "spsc across domains" `Quick test_tqueue_spsc;
          Alcotest.test_case "broadcast" `Quick test_tqueue_broadcast;
          Alcotest.test_case "close then drain" `Quick test_tqueue_close_then_get;
          Alcotest.test_case "put after done" `Quick test_tqueue_put_after_done;
          Alcotest.test_case "dtype checked" `Quick test_tqueue_dtype_checked;
          Alcotest.test_case "block ops, concurrent producers" `Quick
            test_tqueue_block_concurrent_producers;
          Alcotest.test_case "block > capacity" `Quick test_tqueue_block_larger_than_capacity;
          Alcotest.test_case "eos mid-block" `Quick test_tqueue_block_eos_midblock;
        ] );
      ( "sim",
        [
          Alcotest.test_case "io count mismatch" `Quick test_sim_io_count_mismatch;
          Alcotest.test_case "kernel failure reported" `Quick test_sim_kernel_failure_reported;
          Alcotest.test_case "thread count" `Quick test_sim_thread_count;
          QCheck_alcotest.to_alcotest prop_x86sim_random_chain;
        ] );
    ]

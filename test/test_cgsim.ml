(* Unit and property tests for the cgsim core library. *)

let dt = Alcotest.testable Cgsim.Dtype.pp Cgsim.Dtype.equal

(* ------------------------------------------------------------------ *)
(* Dtype                                                              *)
(* ------------------------------------------------------------------ *)

let test_dtype_sizes () =
  let open Cgsim.Dtype in
  Alcotest.(check int) "f32" 4 (size_bytes F32);
  Alcotest.(check int) "i16" 2 (size_bytes I16);
  Alcotest.(check int) "v16f32" 64 (size_bytes (Vector (F32, 16)));
  Alcotest.(check int) "struct" 12 (size_bytes (Struct [ "a", F32; "b", I32; "c", U16; "d", I16 ]));
  Alcotest.(check int) "lanes" 16 (scalar_count (Vector (F32, 16)))

let test_dtype_spelling () =
  let open Cgsim.Dtype in
  Alcotest.(check (option dt)) "float" (Some F32) (of_cpp_spelling "float");
  Alcotest.(check (option dt)) "int16_t" (Some I16) (of_cpp_spelling "int16_t");
  Alcotest.(check (option dt)) "v16float" (Some (Vector (F32, 16))) (of_cpp_spelling "v16float");
  Alcotest.(check (option dt)) "v8int32" (Some (Vector (I32, 8))) (of_cpp_spelling "v8int32");
  Alcotest.(check (option dt)) "garbage" None (of_cpp_spelling "quux");
  Alcotest.(check (option dt)) "v0float" None (of_cpp_spelling "v0float");
  Alcotest.(check string) "roundtrip v16f32" "v16float" (cpp_spelling (Vector (F32, 16)));
  Alcotest.(check string) "roundtrip i16" "int16_t" (cpp_spelling I16)

(* ------------------------------------------------------------------ *)
(* Value                                                              *)
(* ------------------------------------------------------------------ *)

let test_value_conforms () =
  let open Cgsim in
  Alcotest.(check bool) "f32 ok" true (Value.conforms Dtype.F32 (Value.Float 1.5));
  Alcotest.(check bool) "i16 ok" true (Value.conforms Dtype.I16 (Value.Int 32767));
  Alcotest.(check bool) "i16 overflow" false (Value.conforms Dtype.I16 (Value.Int 32768));
  Alcotest.(check bool) "u8 negative" false (Value.conforms Dtype.U8 (Value.Int (-1)));
  let vec = Value.Vec [| Value.Float 0.0; Value.Float 1.0 |] in
  Alcotest.(check bool) "vector ok" true (Value.conforms (Dtype.Vector (Dtype.F32, 2)) vec);
  Alcotest.(check bool) "vector wrong lanes" false
    (Value.conforms (Dtype.Vector (Dtype.F32, 3)) vec);
  let st = Dtype.Struct [ "x", Dtype.F32; "y", Dtype.I32 ] in
  Alcotest.(check bool) "struct ok" true
    (Value.conforms st (Value.Rec [ "x", Value.Float 1.0; "y", Value.Int 2 ]));
  Alcotest.(check bool) "struct field order matters" false
    (Value.conforms st (Value.Rec [ "y", Value.Int 2; "x", Value.Float 1.0 ]))

let test_value_int_ops () =
  let open Cgsim in
  Alcotest.(check int) "clamp high" 32767 (Value.clamp_int Dtype.I16 100000);
  Alcotest.(check int) "clamp low" (-32768) (Value.clamp_int Dtype.I16 (-100000));
  Alcotest.(check int) "wrap i16" (-32768) (Value.wrap_int Dtype.I16 32768);
  Alcotest.(check int) "wrap u8" 1 (Value.wrap_int Dtype.U8 257);
  Alcotest.(check int) "zero int" 0 (Value.to_int (Value.zero Dtype.I32))

(* ------------------------------------------------------------------ *)
(* Settings                                                           *)
(* ------------------------------------------------------------------ *)

let test_settings_merge () =
  let open Cgsim.Settings in
  let ok = function Ok s -> s | Error e -> Alcotest.failf "unexpected merge error: %s" e in
  let m = ok (merge (window 8192) (with_beat 8 default)) in
  Alcotest.(check bool) "window+beat" true (equal m (with_beat 8 (window 8192)));
  (match merge (window 8192) (window 4096) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "conflicting windows must not merge");
  (match merge stream rtp with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "stream vs rtp must not merge");
  Alcotest.(check bool) "wildcard" true (equal (ok (merge default stream)) stream)

let test_settings_validate () =
  let open Cgsim.Settings in
  (match validate ~elem_bytes:4 (window 8192) with
   | Ok () -> ()
   | Error e -> Alcotest.failf "8192/4 window should validate: %s" e);
  (match validate ~elem_bytes:3 (window 8192) with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "non-multiple window must fail");
  (match validate ~elem_bytes:4 (with_beat 5 stream) with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "beat 5 must fail");
  Alcotest.(check int) "window depth = 2 windows" 4096
    (resolved_depth ~elem_bytes:4 (window 8192));
  Alcotest.(check int) "stream default depth" default_stream_depth
    (resolved_depth ~elem_bytes:4 stream)

let settings_gen =
  let open QCheck.Gen in
  let transport =
    frequency
      [
        2, return None;
        2, return (Some Cgsim.Settings.Stream);
        1, map (fun i -> Some (Cgsim.Settings.Window (4 * (1 + i)))) (int_bound 8);
        1, return (Some Cgsim.Settings.Rtp);
      ]
  in
  let beat = frequency [ 2, return None; 1, oneofl [ Some 4; Some 8; Some 16 ] ] in
  let depth = frequency [ 2, return None; 1, map (fun i -> Some (1 + i)) (int_bound 64) ] in
  map
    (fun (transport, (beat_bytes, depth)) -> { Cgsim.Settings.transport; beat_bytes; depth })
    (pair transport (pair beat depth))

let settings_arb =
  QCheck.make settings_gen ~print:(fun s -> Format.asprintf "%a" Cgsim.Settings.pp s)

let prop_merge_commutative =
  QCheck.Test.make ~name:"Settings.merge is commutative" ~count:500
    (QCheck.pair settings_arb settings_arb)
    (fun (a, b) ->
      let open Cgsim.Settings in
      match merge a b, merge b a with
      | Ok x, Ok y -> equal x y
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false)

let prop_merge_associative =
  QCheck.Test.make ~name:"Settings.merge is associative" ~count:500
    (QCheck.triple settings_arb settings_arb settings_arb)
    (fun (a, b, c) ->
      let open Cgsim.Settings in
      let left = Result.bind (merge a b) (fun ab -> merge ab c) in
      let right = Result.bind (merge b c) (fun bc -> merge a bc) in
      match left, right with
      | Ok x, Ok y -> equal x y
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false)

let prop_merge_idempotent =
  QCheck.Test.make ~name:"Settings.merge is idempotent" ~count:500 settings_arb (fun a ->
      let open Cgsim.Settings in
      match merge a a with
      | Ok x -> equal x a
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Attr                                                               *)
(* ------------------------------------------------------------------ *)

let test_attr_merge () =
  let open Cgsim.Attr in
  let merged = merge [ s "plio_name" "a"; i "plio_width" 64 ] [ s "plio_name" "b" ] in
  Alcotest.(check (option string)) "override" (Some "b") (find_string "plio_name" merged);
  Alcotest.(check (option int)) "kept" (Some 64) (find_int "plio_width" merged);
  Alcotest.(check int) "no duplicates" 2 (List.length merged);
  Alcotest.(check (option int)) "wrong kind" None (find_int "plio_name" merged)

(* ------------------------------------------------------------------ *)
(* Sched                                                              *)
(* ------------------------------------------------------------------ *)

let test_sched_roundrobin () =
  let s = Cgsim.Sched.create () in
  let log = ref [] in
  let fiber name =
    for i = 1 to 3 do
      log := Printf.sprintf "%s%d" name i :: !log;
      Cgsim.Sched.yield ()
    done
  in
  Cgsim.Sched.spawn s ~name:"a" (fun () -> fiber "a");
  Cgsim.Sched.spawn s ~name:"b" (fun () -> fiber "b");
  let stats = Cgsim.Sched.run s in
  Alcotest.(check int) "completed" 2 stats.Cgsim.Sched.completed;
  Alcotest.(check (list string)) "interleaving"
    [ "a1"; "b1"; "a2"; "b2"; "a3"; "b3" ]
    (List.rev !log)

let test_sched_park_wake () =
  let s = Cgsim.Sched.create () in
  let slot = ref None in
  let got = ref (-1) in
  Cgsim.Sched.spawn s ~name:"consumer" (fun () ->
      Cgsim.Sched.park (fun w -> slot := Some w);
      got := 42);
  Cgsim.Sched.spawn s ~name:"producer" (fun () ->
      match !slot with
      | Some w -> Cgsim.Sched.wake w
      | None -> Alcotest.fail "consumer should have parked first");
  let stats = Cgsim.Sched.run s in
  Alcotest.(check int) "both completed" 2 stats.Cgsim.Sched.completed;
  Alcotest.(check int) "consumer resumed" 42 !got

let test_sched_stall_cancels () =
  let s = Cgsim.Sched.create () in
  let cleaned = ref false in
  Cgsim.Sched.spawn s ~name:"stuck" (fun () ->
      Fun.protect
        ~finally:(fun () -> cleaned := true)
        (fun () -> Cgsim.Sched.park (fun _ -> ())));
  let stats = Cgsim.Sched.run s in
  Alcotest.(check int) "cancelled" 1 stats.Cgsim.Sched.cancelled;
  Alcotest.(check bool) "cleanup ran" true !cleaned

let test_sched_failure_recorded () =
  let s = Cgsim.Sched.create () in
  Cgsim.Sched.spawn s ~name:"boom" (fun () -> failwith "kernel bug");
  let stats = Cgsim.Sched.run s in
  match stats.Cgsim.Sched.failed with
  | [ ("boom", Failure msg) ] when msg = "kernel bug" -> ()
  | _ -> Alcotest.fail "failure should be recorded with fiber name"

let test_sched_stale_waker () =
  let s = Cgsim.Sched.create () in
  let first = ref None in
  let hits = ref 0 in
  Cgsim.Sched.spawn s ~name:"sleeper" (fun () ->
      Cgsim.Sched.park (fun w -> first := Some w);
      incr hits;
      (* Park again; waking the stale first waker must not resume this. *)
      Cgsim.Sched.park (fun _ -> ()));
  Cgsim.Sched.spawn s ~name:"waker" (fun () ->
      match !first with
      | Some w ->
        Cgsim.Sched.wake w;
        Cgsim.Sched.yield ();
        Cgsim.Sched.wake w (* stale: sleeper re-parked under a new generation *)
      | None -> Alcotest.fail "sleeper should have parked");
  let stats = Cgsim.Sched.run s in
  Alcotest.(check int) "woken exactly once" 1 !hits;
  Alcotest.(check int) "sleeper cancelled at stall" 1 stats.Cgsim.Sched.cancelled

let test_sched_spawn_during_run () =
  let s = Cgsim.Sched.create () in
  let seen = ref [] in
  Cgsim.Sched.spawn s ~name:"parent" (fun () ->
      seen := "parent" :: !seen;
      Cgsim.Sched.spawn s ~name:"child" (fun () -> seen := "child" :: !seen));
  let stats = Cgsim.Sched.run s in
  Alcotest.(check int) "both ran" 2 stats.Cgsim.Sched.completed;
  Alcotest.(check (list string)) "order" [ "parent"; "child" ] (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* Bqueue                                                             *)
(* ------------------------------------------------------------------ *)

let run_fibers fibers =
  let s = Cgsim.Sched.create () in
  List.iter (fun (name, fn) -> Cgsim.Sched.spawn s ~name fn) fibers;
  Cgsim.Sched.run s

let test_bqueue_fifo () =
  let q = Cgsim.Bqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:4 () in
  let p = Cgsim.Bqueue.add_producer q in
  let c = Cgsim.Bqueue.add_consumer q in
  let got = ref [] in
  let stats =
    run_fibers
      [
        ( "producer",
          fun () ->
            for i = 1 to 100 do
              Cgsim.Bqueue.put p (Cgsim.Value.Int i)
            done;
            Cgsim.Bqueue.producer_done p );
        ( "consumer",
          fun () ->
            let rec loop () =
              got := Cgsim.Value.to_int (Cgsim.Bqueue.get c) :: !got;
              loop ()
            in
            loop () );
      ]
  in
  Alcotest.(check int) "all fibers done" 2 stats.Cgsim.Sched.completed;
  Alcotest.(check (list int)) "order" (List.init 100 (fun i -> i + 1)) (List.rev !got)

let test_bqueue_broadcast () =
  let q = Cgsim.Bqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:2 () in
  let p = Cgsim.Bqueue.add_producer q in
  let c1 = Cgsim.Bqueue.add_consumer q in
  let c2 = Cgsim.Bqueue.add_consumer q in
  let got1 = ref [] and got2 = ref [] in
  let consume c acc () =
    let rec loop () =
      acc := Cgsim.Value.to_int (Cgsim.Bqueue.get c) :: !acc;
      loop ()
    in
    loop ()
  in
  let _ =
    run_fibers
      [
        ( "producer",
          fun () ->
            for i = 1 to 50 do
              Cgsim.Bqueue.put p (Cgsim.Value.Int i)
            done;
            Cgsim.Bqueue.producer_done p );
        "c1", consume c1 got1;
        "c2", consume c2 got2;
      ]
  in
  let expect = List.init 50 (fun i -> i + 1) in
  Alcotest.(check (list int)) "c1 complete copy" expect (List.rev !got1);
  Alcotest.(check (list int)) "c2 complete copy" expect (List.rev !got2)

let test_bqueue_backpressure () =
  (* Capacity 1 forces strict ping-pong between producer and consumer. *)
  let q = Cgsim.Bqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:1 () in
  let p = Cgsim.Bqueue.add_producer q in
  let c = Cgsim.Bqueue.add_consumer q in
  let max_in_flight = ref 0 in
  let _ =
    run_fibers
      [
        ( "producer",
          fun () ->
            for i = 1 to 20 do
              Cgsim.Bqueue.put p (Cgsim.Value.Int i);
              max_in_flight := max !max_in_flight (Cgsim.Bqueue.available c)
            done;
            Cgsim.Bqueue.producer_done p );
        ( "consumer",
          fun () ->
            let rec loop () =
              ignore (Cgsim.Bqueue.get c);
              loop ()
            in
            loop () );
      ]
  in
  Alcotest.(check bool) "bounded" true (!max_in_flight <= 1)

let test_bqueue_multiproducer () =
  let q = Cgsim.Bqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:8 () in
  let p1 = Cgsim.Bqueue.add_producer q in
  let p2 = Cgsim.Bqueue.add_producer q in
  let c = Cgsim.Bqueue.add_consumer q in
  let got = ref [] in
  let produce p base () =
    for i = 1 to 25 do
      Cgsim.Bqueue.put p (Cgsim.Value.Int (base + i))
    done;
    Cgsim.Bqueue.producer_done p
  in
  let _ =
    run_fibers
      [
        "p1", produce p1 0;
        "p2", produce p2 100;
        ( "consumer",
          fun () ->
            let rec loop () =
              got := Cgsim.Value.to_int (Cgsim.Bqueue.get c) :: !got;
              loop ()
            in
            loop () );
      ]
  in
  let all = List.rev !got in
  Alcotest.(check int) "everything arrived" 50 (List.length all);
  (* Per-producer FIFO: the subsequence from each producer is ordered. *)
  let sub pred = List.filter pred all in
  let sorted l = List.sort compare l in
  Alcotest.(check (list int)) "p1 order kept" (sorted (sub (fun x -> x <= 25)))
    (sub (fun x -> x <= 25));
  Alcotest.(check (list int)) "p2 order kept" (sorted (sub (fun x -> x > 25)))
    (sub (fun x -> x > 25))

let test_bqueue_close_drains () =
  let q = Cgsim.Bqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:8 () in
  let p = Cgsim.Bqueue.add_producer q in
  let c = Cgsim.Bqueue.add_consumer q in
  let got = ref [] in
  let stats =
    run_fibers
      [
        ( "producer",
          fun () ->
            Cgsim.Bqueue.put p (Cgsim.Value.Int 7);
            Cgsim.Bqueue.put p (Cgsim.Value.Int 8);
            Cgsim.Bqueue.producer_done p );
        ( "consumer",
          fun () ->
            let rec loop () =
              got := Cgsim.Value.to_int (Cgsim.Bqueue.get c) :: !got;
              loop ()
            in
            loop () );
      ]
  in
  (* Consumer terminates via End_of_stream, counted as completed. *)
  Alcotest.(check int) "completed" 2 stats.Cgsim.Sched.completed;
  Alcotest.(check (list int)) "drained before close" [ 7; 8 ] (List.rev !got)

let test_bqueue_dtype_check () =
  let q = Cgsim.Bqueue.create ~name:"q" ~dtype:Cgsim.Dtype.F32 ~capacity:2 () in
  let p = Cgsim.Bqueue.add_producer q in
  let stats = run_fibers [ ("bad", fun () -> Cgsim.Bqueue.put p (Cgsim.Value.Int 1)) ] in
  match stats.Cgsim.Sched.failed with
  | [ ("bad", Invalid_argument _) ] -> ()
  | _ -> Alcotest.fail "dtype mismatch should fail the producing fiber"

let prop_bqueue_broadcast_random =
  QCheck.Test.make ~name:"Bqueue broadcast delivers identical complete copies" ~count:50
    QCheck.(pair (int_range 1 6) (list_of_size (QCheck.Gen.int_range 0 60) small_int))
    (fun (cap, items) ->
      let q = Cgsim.Bqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:cap () in
      let p = Cgsim.Bqueue.add_producer q in
      let consumers = List.init 3 (fun _ -> Cgsim.Bqueue.add_consumer q) in
      let results = List.map (fun _ -> ref []) consumers in
      let fibers =
        ( "producer",
          fun () ->
            List.iter (fun i -> Cgsim.Bqueue.put p (Cgsim.Value.Int i)) items;
            Cgsim.Bqueue.producer_done p )
        :: List.map2
             (fun c acc ->
               ( "consumer",
                 fun () ->
                   let rec loop () =
                     acc := Cgsim.Value.to_int (Cgsim.Bqueue.get c) :: !acc;
                     loop ()
                   in
                   loop () ))
             consumers results
      in
      ignore (run_fibers fibers);
      List.for_all (fun acc -> List.rev !acc = items) results)

(* ------------------------------------------------------------------ *)
(* Bqueue block transfers                                             *)
(* ------------------------------------------------------------------ *)

let ints lo hi = Array.init (hi - lo + 1) (fun i -> Cgsim.Value.Int (lo + i))

let test_bqueue_block_roundtrip () =
  (* put_block / get_block move the same stream an element loop would. *)
  let q = Cgsim.Bqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:8 () in
  let p = Cgsim.Bqueue.add_producer q in
  let c = Cgsim.Bqueue.add_consumer q in
  let got = ref [] in
  let stats =
    run_fibers
      [
        ( "producer",
          fun () ->
            Cgsim.Bqueue.put_block p (ints 1 40);
            Cgsim.Bqueue.put_block p [||];
            Cgsim.Bqueue.put_block p (ints 41 100);
            Cgsim.Bqueue.producer_done p );
        ( "consumer",
          fun () ->
            let rec loop () =
              let vs = Cgsim.Bqueue.get_block c 10 in
              Array.iter (fun v -> got := Cgsim.Value.to_int v :: !got) vs;
              loop ()
            in
            loop () );
      ]
  in
  Alcotest.(check int) "all fibers done" 2 stats.Cgsim.Sched.completed;
  Alcotest.(check (list int)) "order" (List.init 100 (fun i -> i + 1)) (List.rev !got)

let test_bqueue_block_broadcast_mixed () =
  (* Broadcast with consumers at different cursors: one drains in blocks
     of 7, one element-at-a-time; both must see identical complete
     copies through a tiny ring. *)
  let q = Cgsim.Bqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:3 () in
  let p = Cgsim.Bqueue.add_producer q in
  let cb = Cgsim.Bqueue.add_consumer q in
  let ce = Cgsim.Bqueue.add_consumer q in
  let got_b = ref [] and got_e = ref [] in
  let _ =
    run_fibers
      [
        ( "producer",
          fun () ->
            Cgsim.Bqueue.put_block p (ints 1 70);
            Cgsim.Bqueue.producer_done p );
        ( "block-consumer",
          fun () ->
            let rec loop () =
              Array.iter
                (fun v -> got_b := Cgsim.Value.to_int v :: !got_b)
                (Cgsim.Bqueue.get_block cb 7);
              loop ()
            in
            loop () );
        ( "elem-consumer",
          fun () ->
            let rec loop () =
              got_e := Cgsim.Value.to_int (Cgsim.Bqueue.get ce) :: !got_e;
              loop ()
            in
            loop () );
      ]
  in
  let expect = List.init 70 (fun i -> i + 1) in
  Alcotest.(check (list int)) "block consumer copy" expect (List.rev !got_b);
  Alcotest.(check (list int)) "element consumer copy" expect (List.rev !got_e)

let test_bqueue_block_larger_than_capacity () =
  (* A single block far larger than the ring must stream through. *)
  let q = Cgsim.Bqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:4 () in
  let p = Cgsim.Bqueue.add_producer q in
  let c = Cgsim.Bqueue.add_consumer q in
  let got = ref [||] in
  let stats =
    run_fibers
      [
        ( "producer",
          fun () ->
            Cgsim.Bqueue.put_block p (ints 1 64);
            Cgsim.Bqueue.producer_done p );
        ("consumer", fun () -> got := Cgsim.Bqueue.get_block c 64);
      ]
  in
  Alcotest.(check int) "no deadlock" 2 stats.Cgsim.Sched.completed;
  Alcotest.(check (list int)) "content"
    (List.init 64 (fun i -> i + 1))
    (Array.to_list (Array.map Cgsim.Value.to_int !got))

let test_bqueue_block_eos_midblock () =
  (* End_of_stream arriving mid-block: the elements consumed before the
     close stay consumed, then the block read raises. *)
  let q = Cgsim.Bqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:8 () in
  let p = Cgsim.Bqueue.add_producer q in
  let c = Cgsim.Bqueue.add_consumer q in
  let raised = ref false in
  let drained = ref (-1) in
  let _ =
    run_fibers
      [
        ( "producer",
          fun () ->
            Cgsim.Bqueue.put_block p (ints 1 5);
            Cgsim.Bqueue.producer_done p );
        ( "consumer",
          fun () ->
            (try ignore (Cgsim.Bqueue.get_block c 8)
             with Cgsim.Sched.End_of_stream -> raised := true);
            drained := Cgsim.Bqueue.available c );
      ]
  in
  Alcotest.(check bool) "raised" true !raised;
  Alcotest.(check int) "partial block was consumed" 0 !drained

let test_bqueue_get_some_bounds () =
  (* get_some returns between 1 and max immediately-available elements
     and raises End_of_stream once closed and drained. *)
  let q = Cgsim.Bqueue.create ~name:"q" ~dtype:Cgsim.Dtype.I32 ~capacity:16 () in
  let p = Cgsim.Bqueue.add_producer q in
  let c = Cgsim.Bqueue.add_consumer q in
  let sizes = ref [] in
  let total = ref 0 in
  let _ =
    run_fibers
      [
        ( "producer",
          fun () ->
            Cgsim.Bqueue.put_block p (ints 1 10);
            Cgsim.Bqueue.producer_done p );
        ( "consumer",
          fun () ->
            let rec loop () =
              let vs = Cgsim.Bqueue.get_some c ~max:4 in
              sizes := Array.length vs :: !sizes;
              total := !total + Array.length vs;
              loop ()
            in
            loop () );
      ]
  in
  Alcotest.(check int) "total" 10 !total;
  List.iter
    (fun n -> Alcotest.(check bool) "1 <= n <= max" true (n >= 1 && n <= 4))
    !sizes

let test_value_compile_check_matches_conforms () =
  let open Cgsim in
  let dtypes =
    [
      Dtype.F32;
      Dtype.F64;
      Dtype.I8;
      Dtype.I16;
      Dtype.I32;
      Dtype.I64;
      Dtype.U8;
      Dtype.U16;
      Dtype.U32;
      Dtype.Vector (Dtype.F32, 2);
      Dtype.Vector (Dtype.U8, 4);
      Dtype.Struct [ "x", Dtype.F32; "y", Dtype.I16 ];
      Dtype.Struct [ "pix", Dtype.Vector (Dtype.U8, 4); "xf", Dtype.U16 ];
    ]
  in
  let values =
    [
      Value.Float 1.5;
      Value.Int 0;
      Value.Int 200;
      Value.Int (-1);
      Value.Int 32768;
      Value.Int 70000;
      Value.Vec [| Value.Float 0.0; Value.Float 1.0 |];
      Value.Vec [| Value.Int 1; Value.Int 2; Value.Int 3; Value.Int 4 |];
      Value.Vec [| Value.Int 255; Value.Int 256; Value.Int 0; Value.Int 9 |];
      Value.Rec [ "x", Value.Float 1.0; "y", Value.Int 2 ];
      Value.Rec [ "y", Value.Int 2; "x", Value.Float 1.0 ];
      Value.Rec [ "pix", Value.Vec (Array.make 4 (Value.Int 7)); "xf", Value.Int 9 ];
    ]
  in
  List.iter
    (fun d ->
      let compiled = Value.compile_check d in
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (Format.asprintf "compile_check %a" Dtype.pp d)
            (Value.conforms d v) (compiled v))
        values)
    dtypes

let test_value_equal_vec () =
  let open Cgsim in
  let v a = Value.Vec (Array.map (fun i -> Value.Int i) a) in
  Alcotest.(check bool) "equal" true (Value.equal (v [| 1; 2; 3 |]) (v [| 1; 2; 3 |]));
  Alcotest.(check bool) "length differs" false (Value.equal (v [| 1; 2 |]) (v [| 1; 2; 3 |]));
  Alcotest.(check bool) "first element differs" false
    (Value.equal (v [| 9; 2; 3 |]) (v [| 1; 2; 3 |]));
  Alcotest.(check bool) "last element differs" false
    (Value.equal (v [| 1; 2; 9 |]) (v [| 1; 2; 3 |]));
  Alcotest.(check bool) "empty" true (Value.equal (v [||]) (v [||]))

let test_sched_wake_batch () =
  let s = Cgsim.Sched.create () in
  let wakers = ref [] in
  let resumed = ref 0 in
  for i = 1 to 3 do
    Cgsim.Sched.spawn s ~name:(Printf.sprintf "sleeper%d" i) (fun () ->
        Cgsim.Sched.park (fun w -> wakers := w :: !wakers);
        incr resumed)
  done;
  Cgsim.Sched.spawn s ~name:"waker" (fun () ->
      Alcotest.(check int) "all parked" 3 (Cgsim.Sched.parked_count s);
      (* Duplicate entries must be skipped as stale. *)
      Cgsim.Sched.wake_batch (!wakers @ !wakers);
      Alcotest.(check int) "none parked after batch" 0 (Cgsim.Sched.parked_count s));
  let stats = Cgsim.Sched.run s in
  Alcotest.(check int) "all resumed" 3 !resumed;
  Alcotest.(check int) "completed" 4 stats.Cgsim.Sched.completed

(* ------------------------------------------------------------------ *)
(* Builder / Serialized / Runtime round trip                          *)
(* ------------------------------------------------------------------ *)

let scale_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"test_scale"
    [
      Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32;
    ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
      while true do
        Cgsim.Port.put_f32 o (2.0 *. Cgsim.Port.get_f32 i)
      done)

let add_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"test_add"
    [
      Cgsim.Kernel.in_port "a" Cgsim.Dtype.F32;
      Cgsim.Kernel.in_port "b" Cgsim.Dtype.F32;
      Cgsim.Kernel.out_port "sum" Cgsim.Dtype.F32;
    ]
    (fun b ->
      let a = Cgsim.Kernel.rd b 0 and bb = Cgsim.Kernel.rd b 1 and o = Cgsim.Kernel.wr b 0 in
      while true do
        let x = Cgsim.Port.get_f32 a in
        let y = Cgsim.Port.get_f32 bb in
        Cgsim.Port.put_f32 o (x +. y)
      done)

let () =
  Cgsim.Registry.register scale_kernel;
  Cgsim.Registry.register add_kernel

let diamond_graph () =
  (* in -> scale -> (broadcast) -> two scales -> add -> out *)
  Cgsim.Builder.make ~name:"diamond" ~inputs:[ "x", Cgsim.Dtype.F32 ] (fun b conns ->
      let x = List.hd conns in
      let mid = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      let l = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      let r = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      ignore (Cgsim.Builder.add_kernel b scale_kernel [ x; mid ]);
      ignore (Cgsim.Builder.add_kernel b scale_kernel [ mid; l ]);
      ignore (Cgsim.Builder.add_kernel b scale_kernel [ mid; r ]);
      ignore (Cgsim.Builder.add_kernel b add_kernel [ l; r; out ]);
      [ out ])

let test_builder_valid () =
  let g = diamond_graph () in
  match Cgsim.Serialized.validate_diags g with
  | [] -> ()
  | diags ->
    Alcotest.failf "diamond should validate: %s"
      (String.concat "; " (List.map Cgsim.Diagnostic.render diags))

let test_builder_broadcast_recorded () =
  let g = diamond_graph () in
  (* Net 1 is "mid": one writer, two readers. *)
  let mid = Cgsim.Serialized.net g 1 in
  Alcotest.(check int) "writers" 1 (List.length mid.Cgsim.Serialized.writers);
  Alcotest.(check int) "readers" 2 (List.length mid.Cgsim.Serialized.readers)

let test_builder_dtype_mismatch () =
  match
    Cgsim.Builder.make ~name:"bad" ~inputs:[ "x", Cgsim.Dtype.I32 ] (fun b conns ->
        let x = List.hd conns in
        let y = Cgsim.Builder.net b Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel b scale_kernel [ x; y ]);
        [ y ])
  with
  | exception Cgsim.Builder.Construction_error _ -> ()
  | _ -> Alcotest.fail "connecting i32 connector to f32 port must fail"

let test_builder_arity_mismatch () =
  match
    Cgsim.Builder.make ~name:"bad" ~inputs:[ "x", Cgsim.Dtype.F32 ] (fun b conns ->
        ignore (Cgsim.Builder.add_kernel b add_kernel conns);
        conns)
  with
  | exception Cgsim.Builder.Construction_error _ -> ()
  | _ -> Alcotest.fail "wrong connector count must fail"

let test_builder_dangling () =
  match
    Cgsim.Builder.make ~name:"bad" ~inputs:[] (fun b _ ->
        let orphan = Cgsim.Builder.net b Cgsim.Dtype.F32 in
        let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel b scale_kernel [ orphan; out ]);
        [ out ])
  with
  | exception Cgsim.Builder.Construction_error _ -> ()
  | _ -> Alcotest.fail "kernel reading an unwritten connector must fail at freeze"

let test_builder_cross_builder_conn () =
  let b1 = Cgsim.Builder.create ~name:"g1" in
  let b2 = Cgsim.Builder.create ~name:"g2" in
  let c1 = Cgsim.Builder.net b1 Cgsim.Dtype.F32 in
  match Cgsim.Builder.attach_attributes b2 c1 [] with
  | exception Cgsim.Builder.Construction_error _ -> ()
  | () -> Alcotest.fail "foreign connector must be rejected"

let test_runtime_diamond () =
  let g = diamond_graph () in
  let sink, contents = Cgsim.Io.f32_buffer () in
  let input = Cgsim.Io.of_f32_array [| 1.0; 2.0; 3.0 |] in
  let _ = Cgsim.Runtime.execute_exn g ~sources:[ input ] ~sinks:[ sink ] in
  (* x -> 2x -> (4x, 4x) -> 8x *)
  Alcotest.(check (array (float 1e-6))) "diamond output" [| 8.0; 16.0; 24.0 |] (contents ())

let test_runtime_io_count_mismatch () =
  let g = diamond_graph () in
  match Cgsim.Runtime.execute_exn g ~sources:[] ~sinks:[ Cgsim.Io.null () ] with
  | exception Cgsim.Runtime.Runtime_error _ -> ()
  | _ -> Alcotest.fail "source count mismatch must fail"

let test_runtime_unregistered_kernel () =
  let ghost =
    Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"test_ghost"
      [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32; Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32 ]
      (fun _ -> ())
  in
  (* Intentionally not registered. *)
  match
    Cgsim.Builder.make ~name:"ghostly" ~inputs:[ "x", Cgsim.Dtype.F32 ] (fun b conns ->
        let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel b ghost [ List.hd conns; out ]);
        [ out ])
  with
  | exception Cgsim.Builder.Construction_error _ -> ()
  | _g -> Alcotest.fail "freeze must reject unregistered kernels"

let test_runtime_single_shot () =
  let g = diamond_graph () in
  let t = Cgsim.Runtime.instantiate g in
  let _ =
    Cgsim.Runtime.run t ~sources:[ Cgsim.Io.of_f32_array [| 1.0 |] ] ~sinks:[ Cgsim.Io.null () ]
  in
  match
    Cgsim.Runtime.run t ~sources:[ Cgsim.Io.of_f32_array [| 1.0 |] ] ~sinks:[ Cgsim.Io.null () ]
  with
  | exception Cgsim.Runtime.Runtime_error _ -> ()
  | _ -> Alcotest.fail "contexts are single-shot"

let test_runtime_rtp () =
  (* Runtime-parameter source delivers exactly one scalar. *)
  let gain_kernel =
    Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"test_gain"
      [
        Cgsim.Kernel.in_port "gain" Cgsim.Dtype.F32 ~settings:Cgsim.Settings.rtp;
        Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
        Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32;
      ]
      (fun b ->
        let gain = Cgsim.Port.get_f32 (Cgsim.Kernel.rd b 0) in
        let i = Cgsim.Kernel.rd b 1 and o = Cgsim.Kernel.wr b 0 in
        while true do
          Cgsim.Port.put_f32 o (gain *. Cgsim.Port.get_f32 i)
        done)
  in
  Cgsim.Registry.register gain_kernel;
  let g =
    Cgsim.Builder.make ~name:"rtp_graph"
      ~inputs:[ "gain", Cgsim.Dtype.F32; "x", Cgsim.Dtype.F32 ]
      (fun b conns ->
        match conns with
        | [ gain; x ] ->
          let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
          ignore (Cgsim.Builder.add_kernel b gain_kernel [ gain; x; out ]);
          [ out ]
        | _ -> assert false)
  in
  let sink, contents = Cgsim.Io.f32_buffer () in
  let _ =
    Cgsim.Runtime.execute_exn g
      ~sources:[ Cgsim.Io.rtp (Cgsim.Value.Float 3.0); Cgsim.Io.of_f32_array [| 1.0; 2.0 |] ]
      ~sinks:[ sink ]
  in
  Alcotest.(check (array (float 1e-6))) "rtp applied" [| 3.0; 6.0 |] (contents ())

let prop_pipeline_random =
  (* A random-length chain of scale kernels doubles each element n times. *)
  QCheck.Test.make ~name:"runtime: random scale chains compute 2^n * x" ~count:25
    QCheck.(pair (int_range 1 6) (list_of_size (QCheck.Gen.int_range 0 20) (int_range (-100) 100)))
    (fun (depth, xs) ->
      let g =
        Cgsim.Builder.make ~name:"chain" ~inputs:[ "x", Cgsim.Dtype.F32 ] (fun b conns ->
            let rec build prev = function
              | 0 -> prev
              | n ->
                let next = Cgsim.Builder.net b Cgsim.Dtype.F32 in
                ignore (Cgsim.Builder.add_kernel b scale_kernel [ prev; next ]);
                build next (n - 1)
            in
            [ build (List.hd conns) depth ])
      in
      let sink, contents = Cgsim.Io.f32_buffer () in
      let input = Cgsim.Io.of_f32_array (Array.of_list (List.map float_of_int xs)) in
      let _ = Cgsim.Runtime.execute_exn g ~sources:[ input ] ~sinks:[ sink ] in
      let expect = List.map (fun x -> float_of_int x *. (2.0 ** float_of_int depth)) xs in
      contents () = Array.of_list expect)

let test_serialized_topology_equal () =
  let a = diamond_graph () in
  let b = diamond_graph () in
  Alcotest.(check bool) "same construction, same topology" true
    (Cgsim.Serialized.equal_topology a b);
  let c =
    Cgsim.Builder.make ~name:"other" ~inputs:[ "x", Cgsim.Dtype.F32 ] (fun b conns ->
        let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel b scale_kernel [ List.hd conns; out ]);
        [ out ])
  in
  Alcotest.(check bool) "different graphs differ" false (Cgsim.Serialized.equal_topology a c)

let test_profile_fraction () =
  (* The Section 5.2 claim: cooperative scheduling keeps sync overhead
     negligible, i.e. the kernel fraction dominates. *)
  let busy =
    Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"test_busy"
      [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32; Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32 ]
      (fun b ->
        let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
        while true do
          let x = Cgsim.Port.get_f32 i in
          let acc = ref x in
          for _ = 1 to 5000 do
            acc := !acc *. 1.0000001 +. 0.5
          done;
          Cgsim.Port.put_f32 o !acc
        done)
  in
  Cgsim.Registry.register busy;
  let g =
    Cgsim.Builder.make ~name:"busy_graph" ~inputs:[ "x", Cgsim.Dtype.F32 ] (fun b conns ->
        let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel b busy [ List.hd conns; out ]);
        [ out ])
  in
  let sink = Cgsim.Io.null () in
  let input = Cgsim.Io.of_f32_array (Array.init 500 float_of_int) in
  let stats = Cgsim.Runtime.execute_exn g ~sources:[ input ] ~sinks:[ sink ] in
  Alcotest.(check bool) "kernel fraction > 0.9" true (Cgsim.Sched.kernel_fraction stats > 0.9)

(* ------------------------------------------------------------------ *)
(* Graph_text codec                                                   *)
(* ------------------------------------------------------------------ *)

let test_graph_text_dtype_roundtrip () =
  List.iter
    (fun t ->
      let s = Cgsim.Graph_text.dtype_to_string t in
      match Cgsim.Graph_text.dtype_of_string s with
      | Ok t' -> Alcotest.(check bool) (s ^ " round-trips") true (Cgsim.Dtype.equal t t')
      | Error e -> Alcotest.failf "%s: %s" s e)
    [
      Cgsim.Dtype.F32;
      Cgsim.Dtype.I16;
      Cgsim.Dtype.U32;
      Cgsim.Dtype.Vector (Cgsim.Dtype.I16, 2);
      Cgsim.Dtype.Vector (Cgsim.Dtype.F32, 16);
      Cgsim.Dtype.Struct
        [ "pix", Cgsim.Dtype.Vector (Cgsim.Dtype.U8, 4); "xf", Cgsim.Dtype.U16; "yf", Cgsim.Dtype.U16 ];
      Cgsim.Dtype.Struct [ "a", Cgsim.Dtype.Struct [ "b", Cgsim.Dtype.F64 ] ];
    ]

let test_graph_text_dtype_errors () =
  List.iter
    (fun bad ->
      match Cgsim.Graph_text.dtype_of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should not parse" bad)
    [ "q32"; "v0"; "{a}"; "{a:f32"; "f32junk"; "" ]

let test_graph_text_roundtrip () =
  let g = diamond_graph () in
  let text = Cgsim.Graph_text.to_string g in
  match Cgsim.Graph_text.of_string text with
  | Ok g' ->
    Alcotest.(check bool) "topology preserved" true (Cgsim.Serialized.equal_topology g g');
    Alcotest.(check string) "name preserved" g.Cgsim.Serialized.gname g'.Cgsim.Serialized.gname;
    (* second round must be byte-identical (canonical form) *)
    Alcotest.(check string) "canonical" text (Cgsim.Graph_text.to_string g')
  | Error e -> Alcotest.failf "round-trip failed: %s" e

let test_graph_text_rejects_garbage () =
  (match Cgsim.Graph_text.of_string "cgsim-graph 99
" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown version must be rejected");
  match Cgsim.Graph_text.of_string "cgsim-graph 1
banana split
" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown lines must be rejected"

let test_io_rtp_sink () =
  let g = diamond_graph () in
  let sink, last = Cgsim.Io.rtp_sink () in
  let _ =
    Cgsim.Runtime.execute_exn g ~sources:[ Cgsim.Io.of_f32_array [| 1.0; 2.0 |] ] ~sinks:[ sink ]
  in
  match last () with
  | Some (Cgsim.Value.Float f) -> Alcotest.(check (float 1e-6)) "last value" 16.0 f
  | _ -> Alcotest.fail "rtp sink should hold the final scalar"

(* ------------------------------------------------------------------ *)
(* SPSC fast path, wiring verification, Pool                           *)
(* ------------------------------------------------------------------ *)

let test_bqueue_endpoint_counts () =
  let q = Cgsim.Bqueue.create ~name:"counts" ~dtype:Cgsim.Dtype.I32 ~capacity:4 () in
  Alcotest.(check int) "no producers" 0 (Cgsim.Bqueue.producers q);
  Alcotest.(check int) "no consumers" 0 (Cgsim.Bqueue.consumers q);
  let _p = Cgsim.Bqueue.add_producer q in
  let _c1 = Cgsim.Bqueue.add_consumer q in
  let _c2 = Cgsim.Bqueue.add_consumer q in
  Alcotest.(check int) "one producer" 1 (Cgsim.Bqueue.producers q);
  Alcotest.(check int) "two consumers" 2 (Cgsim.Bqueue.consumers q)

let test_bqueue_spsc_detection () =
  (* 1:1 edge seals onto the fast path. *)
  let q = Cgsim.Bqueue.create ~name:"spsc" ~dtype:Cgsim.Dtype.I32 ~capacity:4 () in
  let _p = Cgsim.Bqueue.add_producer q in
  let _c = Cgsim.Bqueue.add_consumer q in
  Alcotest.(check bool) "not spsc before seal" false (Cgsim.Bqueue.is_spsc q);
  Cgsim.Bqueue.seal q;
  Alcotest.(check bool) "sealed 1:1 is spsc" true (Cgsim.Bqueue.is_spsc q);
  (* Any endpoint registered after sealing drops the flag (transparent
     fallback to the broadcast path). *)
  let _c2 = Cgsim.Bqueue.add_consumer q in
  Alcotest.(check bool) "extra consumer drops spsc" false (Cgsim.Bqueue.is_spsc q);
  (* Broadcast shapes never seal. *)
  let q2 = Cgsim.Bqueue.create ~name:"mpmc" ~dtype:Cgsim.Dtype.I32 ~capacity:4 () in
  let _ = Cgsim.Bqueue.add_producer q2 in
  let _ = Cgsim.Bqueue.add_producer q2 in
  let _ = Cgsim.Bqueue.add_consumer q2 in
  Cgsim.Bqueue.seal q2;
  Alcotest.(check bool) "2 producers never spsc" false (Cgsim.Bqueue.is_spsc q2);
  (* Opt-out leaves a 1:1 edge on the broadcast path. *)
  let q3 = Cgsim.Bqueue.create ~name:"optout" ~dtype:Cgsim.Dtype.I32 ~capacity:4 () in
  let _ = Cgsim.Bqueue.add_producer q3 in
  let _ = Cgsim.Bqueue.add_consumer q3 in
  Cgsim.Bqueue.seal ~spsc:false q3;
  Alcotest.(check bool) "seal ~spsc:false stays mpmc" false (Cgsim.Bqueue.is_spsc q3)

(* Push 0..n-1 through a capacity-8 queue with a mix of element and block
   operations on both sides; returns the received ints in order. *)
let spsc_transfer ~spsc ~n =
  let q = Cgsim.Bqueue.create ~name:"xfer" ~dtype:Cgsim.Dtype.I32 ~capacity:8 () in
  let p = Cgsim.Bqueue.add_producer q in
  let c = Cgsim.Bqueue.add_consumer q in
  Cgsim.Bqueue.seal ~spsc q;
  Alcotest.(check bool) "seal state" spsc (Cgsim.Bqueue.is_spsc q);
  let got = ref [] in
  let s = Cgsim.Sched.create () in
  Cgsim.Sched.spawn s ~name:"producer" (fun () ->
      let i = ref 0 in
      while !i < n do
        if !i mod 3 = 0 && n - !i >= 7 then begin
          (* Block write larger than half the ring to exercise chunking. *)
          Cgsim.Bqueue.put_block p (Array.init 7 (fun k -> Cgsim.Value.Int (!i + k)));
          i := !i + 7
        end
        else begin
          Cgsim.Bqueue.put p (Cgsim.Value.Int !i);
          incr i
        end
      done;
      Cgsim.Bqueue.producer_done p);
  Cgsim.Sched.spawn s ~name:"consumer" (fun () ->
      let step = ref 0 in
      let rec loop () =
        (match !step mod 3 with
         | 0 -> got := Cgsim.Value.to_int (Cgsim.Bqueue.get c) :: !got
         | 1 ->
           Array.iter
             (fun v -> got := Cgsim.Value.to_int v :: !got)
             (Cgsim.Bqueue.get_some c ~max:5)
         | _ ->
           if Cgsim.Bqueue.available c >= 2 then
             Array.iter
               (fun v -> got := Cgsim.Value.to_int v :: !got)
               (Cgsim.Bqueue.get_block c 2)
           else got := Cgsim.Value.to_int (Cgsim.Bqueue.get c) :: !got);
        incr step;
        loop ()
      in
      loop ());
  ignore (Cgsim.Sched.run s);
  List.rev !got

let test_bqueue_spsc_transfer_equal () =
  let n = 200 in
  let fast = spsc_transfer ~spsc:true ~n in
  let slow = spsc_transfer ~spsc:false ~n in
  Alcotest.(check (list int)) "same bytes either path" slow fast;
  Alcotest.(check (list int)) "and they are 0..n-1" (List.init n Fun.id) fast

let test_runtime_spsc_equivalence () =
  (* Whole-graph equivalence: the diamond has 1:1 edges (sealed) and a
     broadcast net (never sealed); outputs must not depend on the flag. *)
  let run ~spsc =
    let sink, contents = Cgsim.Io.f32_buffer () in
    let input = Cgsim.Io.of_f32_array (Array.init 64 float_of_int) in
    let _ =
      Cgsim.Runtime.execute_exn
        ~config:Cgsim.Run_config.(with_spsc spsc default)
        (diamond_graph ()) ~sources:[ input ] ~sinks:[ sink ]
    in
    contents ()
  in
  Alcotest.(check (array (float 0.0))) "spsc on == off" (run ~spsc:false) (run ~spsc:true)

let test_runtime_missing_consumer () =
  (* Hand-build a graph whose kernel output net has neither readers nor a
     global output: structurally valid, but every element written would
     sit unretired forever.  The wiring check must name the port. *)
  let g =
    Cgsim.Builder.make ~name:"leaky" ~inputs:[ "x", Cgsim.Dtype.F32 ] (fun b conns ->
        let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel b scale_kernel [ List.hd conns; out ]);
        [ out ])
  in
  let leaky_net (n : Cgsim.Serialized.net) =
    if n.Cgsim.Serialized.global_output = None then n
    else { n with Cgsim.Serialized.global_output = None }
  in
  let g =
    { g with Cgsim.Serialized.nets = Array.map leaky_net g.Cgsim.Serialized.nets;
             output_order = [||] }
  in
  match
    Cgsim.Runtime.execute_exn g ~sources:[ Cgsim.Io.of_f32_array [| 1.0 |] ] ~sinks:[]
  with
  | exception Cgsim.Runtime.Runtime_error msg ->
    let mentions needle =
      let nl = String.length needle and hl = String.length msg in
      let rec at i = i + nl <= hl && (String.sub msg i nl = needle || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) ("names the failure: " ^ msg) true
      (mentions "no consumer" && mentions "test_scale_0.out")
  | _ -> Alcotest.fail "consumer-less net must be rejected before running"

let pool_io_for_request contents r =
  let sink, c = Cgsim.Io.f32_buffer () in
  contents.(r) <- c;
  let input = Array.init 8 (fun i -> float_of_int ((r * 8) + i)) in
  [ Cgsim.Io.of_f32_array input ], [ sink ]

let pool_expected r = Array.init 8 (fun i -> 8.0 *. float_of_int ((r * 8) + i))

let test_pool_single_domain_matches_sequential () =
  let requests = 5 in
  let contents = Array.make requests (fun () -> [||]) in
  let stats =
    Cgsim.Pool.run ~domains:1 ~requests ~io:(pool_io_for_request contents) (diamond_graph ())
  in
  Alcotest.(check int) "no steals on one domain" 0 stats.Cgsim.Pool.steals;
  Array.iter
    (fun (res : Cgsim.Pool.request_result) ->
      (match res.Cgsim.Pool.outcome with
       | Cgsim.Runtime.Completed _ -> ()
       | o ->
         Alcotest.failf "request %d failed: %a" res.Cgsim.Pool.req_id Cgsim.Runtime.pp_outcome o);
      Alcotest.(check int) "ran on domain 0" 0 res.Cgsim.Pool.domain)
    stats.Cgsim.Pool.results;
  (* Outputs equal what a sequential loop over Runtime.execute yields. *)
  for r = 0 to requests - 1 do
    let sink, seq = Cgsim.Io.f32_buffer () in
    let input = Array.init 8 (fun i -> float_of_int ((r * 8) + i)) in
    let _ =
      Cgsim.Runtime.execute_exn (diamond_graph ())
        ~sources:[ Cgsim.Io.of_f32_array input ] ~sinks:[ sink ]
    in
    Alcotest.(check (array (float 0.0)))
      (Printf.sprintf "request %d matches sequential" r)
      (seq ()) (contents.(r) ())
  done

let test_pool_more_requests_than_domains () =
  let requests = 17 and domains = 4 in
  let contents = Array.make requests (fun () -> [||]) in
  let stats =
    Cgsim.Pool.run ~domains ~requests ~io:(pool_io_for_request contents) (diamond_graph ())
  in
  Alcotest.(check int) "all results present" requests (Array.length stats.Cgsim.Pool.results);
  Array.iteri
    (fun r (res : Cgsim.Pool.request_result) ->
      Alcotest.(check int) "indexed by request id" r res.Cgsim.Pool.req_id;
      (match res.Cgsim.Pool.outcome with
       | Cgsim.Runtime.Completed _ -> ()
       | o -> Alcotest.failf "request %d failed: %a" r Cgsim.Runtime.pp_outcome o);
      Alcotest.(check bool) "domain in range" true
        (res.Cgsim.Pool.domain >= 0 && res.Cgsim.Pool.domain < domains);
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "request %d output" r)
        (pool_expected r) (contents.(r) ()))
    stats.Cgsim.Pool.results

let test_pool_captures_failures () =
  (* A bad request (wrong source count) is reported in its slot; the
     others still complete. *)
  let requests = 4 in
  let contents = Array.make requests (fun () -> [||]) in
  let io r =
    if r = 2 then [], [ Cgsim.Io.null () ] else pool_io_for_request contents r
  in
  let stats = Cgsim.Pool.run ~domains:2 ~requests ~io (diamond_graph ()) in
  Array.iteri
    (fun r (res : Cgsim.Pool.request_result) ->
      match res.Cgsim.Pool.outcome, r with
      | Cgsim.Runtime.Kernel_failed _, 2 -> ()
      | Cgsim.Runtime.Completed _, 2 -> Alcotest.fail "request 2 must fail (no sources)"
      | Cgsim.Runtime.Completed _, _ ->
        Alcotest.(check (array (float 0.0))) "good request" (pool_expected r)
          (contents.(r) ())
      | o, _ -> Alcotest.failf "request %d should succeed: %a" r Cgsim.Runtime.pp_outcome o)
    stats.Cgsim.Pool.results

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "cgsim"
    [
      ( "dtype",
        [
          Alcotest.test_case "sizes" `Quick test_dtype_sizes;
          Alcotest.test_case "cpp spellings" `Quick test_dtype_spelling;
        ] );
      ( "value",
        [
          Alcotest.test_case "conformance" `Quick test_value_conforms;
          Alcotest.test_case "int clamp/wrap" `Quick test_value_int_ops;
          Alcotest.test_case "compile_check == conforms" `Quick
            test_value_compile_check_matches_conforms;
          Alcotest.test_case "vec equality" `Quick test_value_equal_vec;
        ] );
      ( "settings",
        [
          Alcotest.test_case "merge" `Quick test_settings_merge;
          Alcotest.test_case "validate" `Quick test_settings_validate;
        ]
        @ qsuite [ prop_merge_commutative; prop_merge_associative; prop_merge_idempotent ] );
      "attr", [ Alcotest.test_case "merge/override" `Quick test_attr_merge ];
      ( "sched",
        [
          Alcotest.test_case "round robin" `Quick test_sched_roundrobin;
          Alcotest.test_case "park/wake" `Quick test_sched_park_wake;
          Alcotest.test_case "stall cancels" `Quick test_sched_stall_cancels;
          Alcotest.test_case "failure recorded" `Quick test_sched_failure_recorded;
          Alcotest.test_case "stale waker ignored" `Quick test_sched_stale_waker;
          Alcotest.test_case "spawn during run" `Quick test_sched_spawn_during_run;
          Alcotest.test_case "wake batch" `Quick test_sched_wake_batch;
        ] );
      ( "bqueue",
        [
          Alcotest.test_case "fifo" `Quick test_bqueue_fifo;
          Alcotest.test_case "broadcast" `Quick test_bqueue_broadcast;
          Alcotest.test_case "backpressure" `Quick test_bqueue_backpressure;
          Alcotest.test_case "multi-producer" `Quick test_bqueue_multiproducer;
          Alcotest.test_case "close drains" `Quick test_bqueue_close_drains;
          Alcotest.test_case "dtype check" `Quick test_bqueue_dtype_check;
          Alcotest.test_case "block roundtrip" `Quick test_bqueue_block_roundtrip;
          Alcotest.test_case "block broadcast mixed" `Quick test_bqueue_block_broadcast_mixed;
          Alcotest.test_case "block > capacity" `Quick test_bqueue_block_larger_than_capacity;
          Alcotest.test_case "eos mid-block" `Quick test_bqueue_block_eos_midblock;
          Alcotest.test_case "get_some bounds" `Quick test_bqueue_get_some_bounds;
          Alcotest.test_case "endpoint counts" `Quick test_bqueue_endpoint_counts;
          Alcotest.test_case "spsc detection" `Quick test_bqueue_spsc_detection;
          Alcotest.test_case "spsc transfer equal" `Quick test_bqueue_spsc_transfer_equal;
        ]
        @ qsuite [ prop_bqueue_broadcast_random ] );
      ( "builder",
        [
          Alcotest.test_case "valid diamond" `Quick test_builder_valid;
          Alcotest.test_case "broadcast recorded" `Quick test_builder_broadcast_recorded;
          Alcotest.test_case "dtype mismatch" `Quick test_builder_dtype_mismatch;
          Alcotest.test_case "arity mismatch" `Quick test_builder_arity_mismatch;
          Alcotest.test_case "dangling connector" `Quick test_builder_dangling;
          Alcotest.test_case "foreign connector" `Quick test_builder_cross_builder_conn;
          Alcotest.test_case "topology equality" `Quick test_serialized_topology_equal;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "diamond" `Quick test_runtime_diamond;
          Alcotest.test_case "io count mismatch" `Quick test_runtime_io_count_mismatch;
          Alcotest.test_case "unregistered kernel" `Quick test_runtime_unregistered_kernel;
          Alcotest.test_case "single shot" `Quick test_runtime_single_shot;
          Alcotest.test_case "runtime parameter" `Quick test_runtime_rtp;
          Alcotest.test_case "profile fraction" `Quick test_profile_fraction;
          Alcotest.test_case "spsc equivalence" `Quick test_runtime_spsc_equivalence;
          Alcotest.test_case "missing consumer" `Quick test_runtime_missing_consumer;
        ]
        @ qsuite [ prop_pipeline_random ] );
      ( "pool",
        [
          Alcotest.test_case "1 domain == sequential" `Quick
            test_pool_single_domain_matches_sequential;
          Alcotest.test_case "requests > domains" `Quick test_pool_more_requests_than_domains;
          Alcotest.test_case "failures captured" `Quick test_pool_captures_failures;
        ] );
      ( "graph-text",
        [
          Alcotest.test_case "dtype round-trip" `Quick test_graph_text_dtype_roundtrip;
          Alcotest.test_case "dtype errors" `Quick test_graph_text_dtype_errors;
          Alcotest.test_case "graph round-trip" `Quick test_graph_text_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_graph_text_rejects_garbage;
        ] );
      "io", [ Alcotest.test_case "rtp sink" `Quick test_io_rtp_sink ];
    ]

(* cgx serve tests: the wire codec must be bit-exact and reject every
   malformed frame shape; a live daemon over a Unix socket must serve
   all four evaluation apps bit-identically to in-process execution,
   expose valid Prometheus metrics showing warm-cache hits, shed at the
   door when the breaker is open, answer an incompatible peer with a
   structured version-mismatch error, and drain on stop without dropping
   an in-flight request. *)

module W = Serve.Wire
module R = Cgsim.Runtime

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

(* Structural equality that distinguishes every float bit pattern (the
   wire codec's exactness claim is about bits, not [=], which conflates
   0.0 with -0.0 and fails on NaN). *)
let rec value_bits_equal a b =
  match a, b with
  | Cgsim.Value.Float x, Cgsim.Value.Float y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Cgsim.Value.Int x, Cgsim.Value.Int y -> x = y
  | Cgsim.Value.Vec xs, Cgsim.Value.Vec ys ->
    Array.length xs = Array.length ys
    && Array.for_all2 (fun x y -> value_bits_equal x y) xs ys
  | Cgsim.Value.Rec xs, Cgsim.Value.Rec ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k, x) (l, y) -> k = l && value_bits_equal x y) xs ys
  | _ -> false

let values_bits_equal a b =
  List.length a = List.length b && List.for_all2 value_bits_equal a b

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let drain_source src =
  let pull = Cgsim.Io.source_pull src in
  let rec go acc =
    match pull () with
    | Some v -> go (v :: acc)
    | None -> List.rev acc
  in
  go []

let temp_sock tag =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cgx-test-%s-%d.sock" tag (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  path

let all_graphs =
  List.map (fun h -> h.Apps.Harness.name, h.Apps.Harness.graph ()) Apps.Harness.all

(* Run [h] in-process under the default config and return the primary
   output — the reference the served outputs must match bit for bit. *)
let local_primary (h : Apps.Harness.t) ~reps =
  let sinks, contents = h.Apps.Harness.make_sinks () in
  (match
     R.execute (h.Apps.Harness.graph ()) ~sources:(h.Apps.Harness.sources ~reps) ~sinks
   with
   | R.Completed _ -> ()
   | o -> Alcotest.failf "local %s: %s" h.Apps.Harness.name (R.outcome_label o));
  contents ()

(* ------------------------------------------------------------------ *)
(* Codec                                                              *)
(* ------------------------------------------------------------------ *)

let awkward_values =
  [
    Cgsim.Value.Float 0.1;
    Cgsim.Value.Float (1.0 /. 3.0);
    Cgsim.Value.Float 1e-300;
    Cgsim.Value.Float (-0.0);
    Cgsim.Value.Float (4.0 *. atan 1.0);
    Cgsim.Value.Float (Float.succ 1.0);
    Cgsim.Value.Int 42;
    Cgsim.Value.Int (-1);
    Cgsim.Value.Int max_int;
    Cgsim.Value.Vec [| Cgsim.Value.Float 1.5; Cgsim.Value.Int 7 |];
    Cgsim.Value.Rec
      [ "re", Cgsim.Value.Float 0.30000000000000004; "im", Cgsim.Value.Float (-2.5) ];
  ]

let test_value_roundtrip () =
  List.iter
    (fun v ->
      let j = W.json_of_value v in
      (* Through the printer and the strict parser, as on the wire. *)
      match Obs.Json.of_string (Obs.Json.to_string j) with
      | Error m -> Alcotest.failf "reparse failed for %s: %s" (Cgsim.Value.to_string v) m
      | Ok j' -> (
        match W.value_of_json j' with
        | Error m -> Alcotest.failf "decode failed for %s: %s" (Cgsim.Value.to_string v) m
        | Ok v' ->
          if not (value_bits_equal v v') then
            Alcotest.failf "not bit-identical: %s vs %s" (Cgsim.Value.to_string v)
              (Cgsim.Value.to_string v')))
    awkward_values

let test_request_roundtrip () =
  let rq =
    {
      W.q_id = 123456789;
      q_body =
        W.Run
          {
            rq_graph = "bitonic";
            rq_inputs = [ awkward_values; [ Cgsim.Value.Int 1 ] ];
            rq_deadline_ms = Some 250.0;
            rq_seed = Some 99;
          };
    }
  in
  (match W.decode_request (W.encode_request rq) with
   | Error e -> Alcotest.failf "run request: %s" (W.decode_error_message e)
   | Ok rq' -> (
     Alcotest.(check int) "id" rq.W.q_id rq'.W.q_id;
     match rq.W.q_body, rq'.W.q_body with
     | W.Run a, W.Run b ->
       Alcotest.(check string) "graph" a.W.rq_graph b.W.rq_graph;
       Alcotest.(check (option (float 0.0))) "deadline" a.W.rq_deadline_ms b.W.rq_deadline_ms;
       Alcotest.(check (option int)) "seed" a.W.rq_seed b.W.rq_seed;
       if not (List.for_all2 values_bits_equal a.W.rq_inputs b.W.rq_inputs) then
         Alcotest.fail "inputs not bit-identical"
     | _ -> Alcotest.fail "body type changed"));
  List.iter
    (fun body ->
      match W.decode_request (W.encode_request { W.q_id = 7; q_body = body }) with
      | Ok { W.q_id = 7; q_body = W.Metrics } when body = W.Metrics -> ()
      | Ok { W.q_id = 7; q_body = W.Ping } when body = W.Ping -> ()
      | Ok _ -> Alcotest.fail "body type changed"
      | Error e -> Alcotest.failf "metrics/ping: %s" (W.decode_error_message e))
    [ W.Metrics; W.Ping ]

let test_reply_roundtrip () =
  let result outcome =
    {
      W.p_id = 5;
      p_body =
        W.Result
          {
            rp_outcome = outcome;
            rp_attempts = 3;
            rp_domain = 1;
            (* Timings cross as %.6g-printed numbers; exactly
               representable values keep [=] meaningful here. *)
            rp_server_ns = 125000.0;
            rp_run_ns = 42.0;
          };
    }
  in
  let replies =
    [
      result (W.Completed [ awkward_values ]);
      result
        (W.Deadline { d_reason = "deadline"; d_parked = [ "k1"; "k2" ]; d_last_kernel = Some "k1" });
      result (W.Deadline { d_reason = "max-steps"; d_parked = []; d_last_kernel = None });
      result W.Cancelled;
      result (W.Failed { x_kernel = "iir_core"; x_message = "boom: 42" });
      result W.Shed;
      { W.p_id = 6; p_body = W.Metrics_text "# HELP x y\n" };
      { W.p_id = 7; p_body = W.Pong };
      { W.p_id = -1; p_body = W.Error (W.Version_mismatch, "speak cgx-serve/1") };
      { W.p_id = 8; p_body = W.Error (W.Unknown_graph, "no graph named \"nope\"") };
    ]
  in
  List.iter
    (fun rp ->
      match W.decode_reply (W.encode_reply rp) with
      | Error e -> Alcotest.failf "reply: %s" (W.decode_error_message e)
      | Ok rp' -> (
        Alcotest.(check int) "id" rp.W.p_id rp'.W.p_id;
        match rp.W.p_body, rp'.W.p_body with
        | W.Result a, W.Result b -> (
          Alcotest.(check string) "outcome label" (W.run_outcome_label a.W.rp_outcome)
            (W.run_outcome_label b.W.rp_outcome);
          Alcotest.(check int) "attempts" a.W.rp_attempts b.W.rp_attempts;
          Alcotest.(check int) "domain" a.W.rp_domain b.W.rp_domain;
          Alcotest.(check (float 0.0)) "server_ns" a.W.rp_server_ns b.W.rp_server_ns;
          match a.W.rp_outcome, b.W.rp_outcome with
          | W.Completed xs, W.Completed ys ->
            if not (List.for_all2 values_bits_equal xs ys) then
              Alcotest.fail "outputs not bit-identical"
          | ( W.Deadline { d_reason = ra; d_parked = pa; d_last_kernel = la },
              W.Deadline { d_reason = rb; d_parked = pb; d_last_kernel = lb } ) ->
            Alcotest.(check string) "reason" ra rb;
            Alcotest.(check (list string)) "parked" pa pb;
            Alcotest.(check (option string)) "last" la lb
          | ( W.Failed { x_kernel = ka; x_message = ma },
              W.Failed { x_kernel = kb; x_message = mb } ) ->
            Alcotest.(check string) "kernel" ka kb;
            Alcotest.(check string) "message" ma mb
          | _ -> ())
        | W.Metrics_text a, W.Metrics_text b -> Alcotest.(check string) "metrics" a b
        | W.Pong, W.Pong -> ()
        | W.Error (ca, ma), W.Error (cb, mb) ->
          Alcotest.(check string) "code" (W.error_code_label ca) (W.error_code_label cb);
          Alcotest.(check string) "message" ma mb
        | _ -> Alcotest.fail "body type changed"))
    replies

(* ------------------------------------------------------------------ *)
(* Framing and rejection                                              *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; String.make 100_000 'z'; "{\"a\":[1,2,3]}" ] in
  let buf = Buffer.create 1024 in
  List.iter (fun p -> Buffer.add_string buf (W.frame p)) payloads;
  let b = Buffer.to_bytes buf in
  let pos = ref 0 in
  List.iter
    (fun p ->
      match W.unframe b ~pos:!pos with
      | Error e -> Alcotest.failf "unframe: %s" (W.frame_error_message e)
      | Ok (p', next) ->
        Alcotest.(check string) "payload" p p';
        pos := next)
    payloads;
  (match W.unframe b ~pos:!pos with
   | Error W.Eof -> ()
   | Error e -> Alcotest.failf "expected Eof, got %s" (W.frame_error_message e)
   | Ok _ -> Alcotest.fail "expected Eof at end of buffer")

let test_frame_rejection () =
  let framed = W.frame "{\"proto\":\"cgx-serve/1\"}" in
  (* Truncated inside the payload and inside the length prefix. *)
  List.iter
    (fun keep ->
      let b = Bytes.of_string (String.sub framed 0 keep) in
      match W.unframe b ~pos:0 with
      | Error W.Truncated -> ()
      | Error e -> Alcotest.failf "keep=%d: expected Truncated, got %s" keep
                     (W.frame_error_message e)
      | Ok _ -> Alcotest.failf "keep=%d: truncated frame decoded" keep)
    [ String.length framed - 1; 5; 2 ];
  (* A hostile length prefix must be refused before any allocation. *)
  let huge = Bytes.create 4 in
  Bytes.set_int32_be huge 0 (Int32.of_int (W.max_frame_bytes + 1));
  (match W.unframe huge ~pos:0 with
   | Error (W.Oversized n) -> Alcotest.(check int) "declared size" (W.max_frame_bytes + 1) n
   | Error e -> Alcotest.failf "expected Oversized, got %s" (W.frame_error_message e)
   | Ok _ -> Alcotest.fail "oversized frame decoded");
  (* Garbage payloads frame fine but must not decode. *)
  List.iter
    (fun garbage ->
      match W.decode_request garbage with
      | Error (W.Malformed _) -> ()
      | Error (W.Wrong_version _) -> Alcotest.failf "%S read as version skew" garbage
      | Ok _ -> Alcotest.failf "garbage decoded: %S" garbage)
    [
      "not json at all";
      "[1,2,3]";
      "{}";
      "{\"proto\":\"cgx-serve/1\",\"id\":\"0\"}";
      "{\"proto\":\"cgx-serve/1\",\"id\":\"0\",\"type\":\"frobnicate\"}";
      "{\"proto\":\"cgx-serve/1\",\"id\":12,\"type\":\"ping\"}";
    ];
  (* Version skew is distinguished from malformedness — and checked
     before anything else in the envelope. *)
  (match W.decode_request "{\"proto\":\"cgx-serve/999\",\"id\":\"0\",\"type\":\"ping\"}" with
   | Error (W.Wrong_version v) -> Alcotest.(check string) "peer proto" "cgx-serve/999" v
   | Error (W.Malformed m) -> Alcotest.failf "version skew read as malformed: %s" m
   | Ok _ -> Alcotest.fail "wrong-version frame decoded");
  match W.decode_request "{\"proto\":\"cgx-serve/999\"}" with
  | Error (W.Wrong_version _) -> ()
  | Error (W.Malformed m) -> Alcotest.failf "proto must be checked first: %s" m
  | Ok _ -> Alcotest.fail "wrong-version frame decoded"

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let test_daemon_lifecycle () =
  let path = temp_sock "life" in
  let server =
    Serve.Server.create ~graphs:all_graphs ~domains:2 ~listen:(Serve.Addr.Unix_path path) ()
  in
  let serving = Domain.spawn (fun () -> Serve.Server.serve server) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Domain.join serving)
    (fun () ->
      let client = Serve.Client.connect ~retries:10 (Serve.Addr.Unix_path path) in
      Fun.protect ~finally:(fun () -> Serve.Client.close client) (fun () ->
          (* Liveness. *)
          (match Serve.Client.ping client with
           | Ok rtt -> Alcotest.(check bool) "rtt positive" true (rtt > 0.0)
           | Error m -> Alcotest.failf "ping: %s" m);
          (* Every app must round-trip bit-identically to an in-process
             run: same primary output bits, and the golden check holds
             on what came over the wire. *)
          List.iter
            (fun (h : Apps.Harness.t) ->
              let reps = 2 in
              let inputs = List.map drain_source (h.Apps.Harness.sources ~reps) in
              match Serve.Client.run client ~graph:h.Apps.Harness.name inputs with
              | Error m -> Alcotest.failf "%s: %s" h.Apps.Harness.name m
              | Ok rp -> (
                match rp.W.rp_outcome with
                | W.Completed outputs ->
                  let primary = match outputs with o :: _ -> o | [] -> [] in
                  (match h.Apps.Harness.check ~reps primary with
                   | Ok () -> ()
                   | Error m -> Alcotest.failf "%s: served output: %s" h.Apps.Harness.name m);
                  let reference = local_primary h ~reps in
                  if not (values_bits_equal reference primary) then
                    Alcotest.failf "%s: served output differs from in-process run"
                      h.Apps.Harness.name;
                  Alcotest.(check bool)
                    (h.Apps.Harness.name ^ " attempts") true (rp.W.rp_attempts >= 1)
                | o ->
                  Alcotest.failf "%s: outcome %s" h.Apps.Harness.name (W.run_outcome_label o)))
            Apps.Harness.all;
          (* A repeat request hits the warm instance cache, and the
             daemon's merged exposition validates strictly. *)
          let h = Apps.Harness.bitonic in
          let inputs = List.map drain_source (h.Apps.Harness.sources ~reps:2) in
          (match Serve.Client.run client ~graph:"bitonic" inputs with
           | Ok { W.rp_outcome = W.Completed _; _ } -> ()
           | Ok _ | Error _ -> Alcotest.fail "repeat bitonic request failed");
          (match Serve.Client.run client ~graph:"no_such_graph" inputs with
           | Error m ->
             Alcotest.(check bool) "unknown-graph error names the code" true
               (contains ~needle:(W.error_code_label W.Unknown_graph) m)
           | Ok _ -> Alcotest.fail "unknown graph served");
          match Serve.Client.metrics client with
          | Error m -> Alcotest.failf "metrics: %s" m
          | Ok exposition ->
            (match Obs.Prom.validate exposition with
             | Ok () -> ()
             | Error m -> Alcotest.failf "exposition invalid: %s" m);
            List.iter
              (fun family ->
                Alcotest.(check bool) (family ^ " present") true
                  (contains ~needle:family exposition))
              [
                "cgsim_pool_warm_hit_total";
                "cgsim_pool_outcome_total";
                "cgsim_serve_request_total";
                "cgsim_serve_connection_total";
              ]))

let test_drain_completes_inflight () =
  let path = temp_sock "drain" in
  let server =
    Serve.Server.create ~graphs:all_graphs ~domains:2 ~listen:(Serve.Addr.Unix_path path) ()
  in
  let serving = Domain.spawn (fun () -> Serve.Server.serve server) in
  let client = Serve.Client.connect ~retries:10 (Serve.Addr.Unix_path path) in
  let reps = 4 in
  let h = Apps.Harness.farrow in
  let inputs = List.map drain_source (h.Apps.Harness.sources ~reps) in
  (* Pipeline a batch, give the reader time to accept it, then stop the
     server with replies still pending: drain must deliver every one
     before the EOF.  (A request the reader only picks up after stop is
     refused with a structured shutting-down error instead — also not a
     drop — but this test wants the completion path, so it waits past
     the accept race.) *)
  let ids = List.init 3 (fun _ -> Serve.Client.send_run client ~graph:"farrow" inputs) in
  Unix.sleepf 0.1;
  Serve.Server.stop server;
  let got =
    List.map
      (fun _ ->
        match Serve.Client.recv client with
        | Error m -> Alcotest.failf "in-flight reply dropped by drain: %s" m
        | Ok { W.p_id; p_body = W.Result { W.rp_outcome = W.Completed outputs; _ } } ->
          let primary = match outputs with o :: _ -> o | [] -> [] in
          (match h.Apps.Harness.check ~reps primary with
           | Ok () -> ()
           | Error m -> Alcotest.failf "drained output: %s" m);
          p_id
        | Ok { W.p_body; _ } ->
          Alcotest.failf "in-flight request not completed: %s"
            (match p_body with
             | W.Result r -> W.run_outcome_label r.W.rp_outcome
             | W.Error (c, _) -> W.error_code_label c
             | W.Metrics_text _ -> "metrics"
             | W.Pong -> "pong"))
      ids
  in
  Alcotest.(check (list int)) "every id answered" (List.sort compare ids)
    (List.sort compare got);
  (* After the last reply the server closes: clean EOF, not garbage. *)
  (match Serve.Client.recv client with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "reply after drain");
  Serve.Client.close client;
  Domain.join serving;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path)

let test_breaker_shed_and_version_mismatch () =
  let path = temp_sock "breaker" in
  let config =
    Cgsim.Run_config.(
      default |> with_breaker 1
      |> with_faults
           (Cgsim.Faults.plan [ Cgsim.Faults.raise_on ~kernel:"*" ~after:1 ~fires:(-1) () ]))
  in
  let server =
    Serve.Server.create ~config ~graphs:all_graphs ~domains:1
      ~listen:(Serve.Addr.Unix_path path) ()
  in
  let serving = Domain.spawn (fun () -> Serve.Server.serve server) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Domain.join serving)
    (fun () ->
      (* An incompatible peer gets a structured version-mismatch error,
         not a dropped connection. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      W.write_frame fd "{\"proto\":\"cgx-serve/999\",\"id\":\"0\",\"type\":\"ping\"}";
      (match W.read_frame fd with
       | Error e -> Alcotest.failf "no reply to version skew: %s" (W.frame_error_message e)
       | Ok payload -> (
         match W.decode_reply payload with
         | Ok { W.p_body = W.Error (W.Version_mismatch, _); _ } -> ()
         | Ok _ -> Alcotest.fail "expected a version-mismatch error reply"
         | Error e -> Alcotest.failf "reply undecodable: %s" (W.decode_error_message e)));
      Unix.close fd;
      (* First request fails (the fault plan raises in every kernel),
         opening the threshold-1 breaker; the second is refused at the
         door: shed, zero attempts. *)
      let client = Serve.Client.connect ~retries:10 (Serve.Addr.Unix_path path) in
      Fun.protect ~finally:(fun () -> Serve.Client.close client) (fun () ->
          let h = Apps.Harness.bitonic in
          let inputs = List.map drain_source (h.Apps.Harness.sources ~reps:1) in
          (match Serve.Client.run client ~graph:"bitonic" inputs with
           | Ok { W.rp_outcome = W.Failed _; rp_attempts = 1; _ } -> ()
           | Ok rp ->
             Alcotest.failf "expected failed/1 attempt, got %s/%d"
               (W.run_outcome_label rp.W.rp_outcome) rp.W.rp_attempts
           | Error m -> Alcotest.failf "first request: %s" m);
          match Serve.Client.run client ~graph:"bitonic" inputs with
          | Ok { W.rp_outcome = W.Shed; rp_attempts = 0; _ } -> ()
          | Ok rp ->
            Alcotest.failf "expected shed/0 attempts, got %s/%d"
              (W.run_outcome_label rp.W.rp_outcome) rp.W.rp_attempts
          | Error m -> Alcotest.failf "second request: %s" m))

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          Alcotest.test_case "value round-trip is bit-exact" `Quick test_value_roundtrip;
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "reply round-trip" `Quick test_reply_roundtrip;
        ] );
      ( "framing",
        [
          Alcotest.test_case "frame/unframe round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "truncated, oversized and garbage frames rejected" `Quick
            test_frame_rejection;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "lifecycle: apps bit-identical, warm hit, metrics" `Quick
            test_daemon_lifecycle;
          Alcotest.test_case "stop drains in-flight pipelined requests" `Quick
            test_drain_completes_inflight;
          Alcotest.test_case "breaker shed at the door; version mismatch answered" `Quick
            test_breaker_shed_and_version_mismatch;
        ] );
    ]

(* Tests for the lib/obs observability layer: ring-buffer wraparound,
   Chrome trace-event export (validated by parsing it back), span
   nesting, metrics, and end-to-end instrumentation consistency on real
   cgsim / x86sim runs. *)

(* ------------------------------------------------------------------ *)
(* Clock                                                              *)
(* ------------------------------------------------------------------ *)

let test_clock_monotone () =
  let prev = ref (Obs.Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_ns () in
    if t < !prev then Alcotest.failf "clock went backwards: %f after %f" t !prev;
    prev := t
  done

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                        *)
(* ------------------------------------------------------------------ *)

let emit_n ring n =
  for i = 1 to n do
    Obs.Ring.emit ring ~ts_ns:(float_of_int i) ~dur_ns:0.0 ~phase:Obs.Event.Instant
      ~name:(Printf.sprintf "e%d" i) ~track:"t" ~cat:"test" ~pid:1 ~a_key:"" ~a_val:0.0
  done

let test_ring_fill () =
  let ring = Obs.Ring.create ~capacity:8 in
  emit_n ring 5;
  Alcotest.(check int) "length" 5 (Obs.Ring.length ring);
  Alcotest.(check int) "dropped" 0 (Obs.Ring.dropped ring);
  let names = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.name) (Obs.Ring.to_list ring) in
  Alcotest.(check (list string)) "order" [ "e1"; "e2"; "e3"; "e4"; "e5" ] names

let test_ring_wraparound () =
  let ring = Obs.Ring.create ~capacity:8 in
  emit_n ring 20;
  Alcotest.(check int) "length capped" 8 (Obs.Ring.length ring);
  Alcotest.(check int) "dropped counts overflow" 12 (Obs.Ring.dropped ring);
  let events = Obs.Ring.to_list ring in
  let names = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.name) events in
  (* Oldest events fall out; the retained window is the tail, in order. *)
  Alcotest.(check (list string)) "newest retained, chronological"
    [ "e13"; "e14"; "e15"; "e16"; "e17"; "e18"; "e19"; "e20" ]
    names;
  let ts = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.ts_ns) events in
  Alcotest.(check bool) "timestamps ascending" true (List.sort compare ts = ts)

let test_ring_rejects_zero_capacity () =
  match Obs.Ring.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected"

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_metrics_basic () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "c";
  Obs.Metrics.add m "c" 4.0;
  Obs.Metrics.high_water m "g" 10.0;
  Obs.Metrics.high_water m "g" 3.0;
  List.iter (fun v -> Obs.Metrics.observe m "h" v) [ 1.0; 10.0; 100.0; 1000.0 ];
  let s = Obs.Metrics.snapshot m in
  (match s.Obs.Metrics.counters with
   | [ c ] ->
     Alcotest.(check string) "counter name" "c" c.Obs.Metrics.c_name;
     Alcotest.(check (float 0.0)) "counter total" 5.0 c.Obs.Metrics.total;
     Alcotest.(check int) "counter events" 2 c.Obs.Metrics.events
   | l -> Alcotest.failf "expected one counter, got %d" (List.length l));
  (match s.Obs.Metrics.gauges with
   | [ g ] -> Alcotest.(check (float 0.0)) "gauge keeps peak" 10.0 g.Obs.Metrics.peak
   | _ -> Alcotest.fail "expected one gauge");
  match s.Obs.Metrics.histograms with
  | [ h ] ->
    Alcotest.(check int) "histo count" 4 h.Obs.Metrics.count;
    Alcotest.(check (float 0.0)) "histo sum" 1111.0 h.Obs.Metrics.sum;
    Alcotest.(check (float 0.0)) "histo min" 1.0 h.Obs.Metrics.min_v;
    Alcotest.(check (float 0.0)) "histo max" 1000.0 h.Obs.Metrics.max_v;
    let p100 = Obs.Metrics.quantile h 1.0 in
    Alcotest.(check bool) "p100 clamps to max" true (p100 = 1000.0);
    let p25 = Obs.Metrics.quantile h 0.25 in
    Alcotest.(check bool) "p25 is near the low end" true (p25 <= 2.0)
  | _ -> Alcotest.fail "expected one histogram"

(* ------------------------------------------------------------------ *)
(* Session + span nesting                                             *)
(* ------------------------------------------------------------------ *)

let test_session_single () =
  let _, _s = Obs.Trace.with_session (fun () -> ()) in
  Alcotest.(check bool) "off after with_session" false (Obs.Trace.is_on ());
  let s = Obs.Trace.start () in
  (match Obs.Trace.start () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "nested start must be rejected");
  (match Obs.Trace.stop () with
   | Some s' -> Alcotest.(check bool) "stop returns the session" true (s == s')
   | None -> Alcotest.fail "stop lost the session");
  Alcotest.(check bool) "stopped_ns recorded" true (s.Obs.Trace.stopped_ns <> None)

let find_span name events =
  List.find_opt
    (fun (e : Obs.Event.t) -> e.Obs.Event.phase = Obs.Event.Span && e.Obs.Event.name = name)
    events

let test_span_nesting () =
  let (), session =
    Obs.Trace.with_session (fun () ->
        Obs.Trace.with_span ~track:"f" "outer" (fun () ->
            ignore (Sys.opaque_identity (Array.make 64 0));
            Obs.Trace.with_span ~track:"f" "inner" (fun () ->
                ignore (Sys.opaque_identity (Array.make 64 0)))))
  in
  let events = Obs.Ring.to_list session.Obs.Trace.ring in
  match find_span "outer" events, find_span "inner" events with
  | Some outer, Some inner ->
    let o0 = outer.Obs.Event.ts_ns and o1 = outer.Obs.Event.ts_ns +. outer.Obs.Event.dur_ns in
    let i0 = inner.Obs.Event.ts_ns and i1 = inner.Obs.Event.ts_ns +. inner.Obs.Event.dur_ns in
    Alcotest.(check bool) "inner starts within outer" true (i0 >= o0);
    Alcotest.(check bool) "inner ends within outer" true (i1 <= o1);
    Alcotest.(check bool) "durations non-negative" true
      (outer.Obs.Event.dur_ns >= 0.0 && inner.Obs.Event.dur_ns >= 0.0)
  | _ -> Alcotest.fail "outer/inner spans missing from the ring"

let test_emit_off_is_noop () =
  Alcotest.(check bool) "tracing off" false (Obs.Trace.is_on ());
  (* None of these may raise or leak anywhere observable. *)
  Obs.Trace.instant ~track:"x" "nothing";
  Obs.Trace.span ~track:"x" ~name:"nothing" ~ts_ns:0.0 ~dur_ns:1.0 ();
  Obs.Trace.incr_metric "nothing";
  Obs.Trace.observe_ns "nothing" 1.0;
  let (), session = Obs.Trace.with_session (fun () -> ()) in
  Alcotest.(check int) "prior emissions did not land in a later session" 0
    (Obs.Ring.length session.Obs.Trace.ring)

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        "s", Obs.Json.Str "a\"b\\c\nd\te";
        "n", Obs.Json.Num 42.0;
        "f", Obs.Json.Num 1.5;
        "b", Obs.Json.Bool true;
        "z", Obs.Json.Null;
        "l", Obs.Json.Arr [ Obs.Json.Num 1.0; Obs.Json.Str "x"; Obs.Json.Obj [] ];
      ]
  in
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" s)
    [ "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "{} trailing"; "" ]

(* ------------------------------------------------------------------ *)
(* End-to-end: cgsim instrumentation                                  *)
(* ------------------------------------------------------------------ *)

let pass_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"obs_pass"
    [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.I32; Cgsim.Kernel.out_port "out" Cgsim.Dtype.I32 ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
      while true do
        Cgsim.Port.put o (Cgsim.Port.get i)
      done)

let () = Cgsim.Registry.register pass_kernel

let pipe_graph () =
  Cgsim.Builder.make ~name:"obspipe" ~inputs:[ "x", Cgsim.Dtype.I32 ] (fun b conns ->
      let mid = Cgsim.Builder.net b Cgsim.Dtype.I32 in
      let out = Cgsim.Builder.net b Cgsim.Dtype.I32 in
      ignore (Cgsim.Builder.add_kernel b pass_kernel [ List.hd conns; mid ]);
      ignore (Cgsim.Builder.add_kernel b pass_kernel [ mid; out ]);
      [ out ])

let traced_cgsim_run ?(n = 500) ?(queue_capacity = 8) () =
  Obs.Trace.with_session (fun () ->
      let sink, contents = Cgsim.Io.int_buffer () in
      let stats =
        Cgsim.Runtime.execute_exn
          ~config:Cgsim.Run_config.(with_queue_capacity queue_capacity default)
          (pipe_graph ())
          ~sources:[ Cgsim.Io.of_int_array Cgsim.Dtype.I32 (Array.init n (fun i -> i)) ]
          ~sinks:[ sink ]
      in
      stats, contents ())

let test_cgsim_occupancy_bounded () =
  let (stats, out), session = traced_cgsim_run () in
  Alcotest.(check int) "all data through" 500 (Array.length out);
  Alcotest.(check bool) "fibers completed" true (stats.Cgsim.Sched.completed > 0);
  let snap = Obs.Metrics.snapshot session.Obs.Trace.metrics in
  let occupancy_gauges =
    List.filter
      (fun (g : Obs.Metrics.gauge_snapshot) ->
        String.length g.Obs.Metrics.g_name >= 19
        && String.sub g.Obs.Metrics.g_name 0 19 = "queue.occupancy_hw:")
      snap.Obs.Metrics.gauges
  in
  Alcotest.(check bool) "occupancy gauges recorded" true (occupancy_gauges <> []);
  List.iter
    (fun (g : Obs.Metrics.gauge_snapshot) ->
      if g.Obs.Metrics.peak > 8.0 then
        Alcotest.failf "%s exceeded capacity: %f" g.Obs.Metrics.g_name g.Obs.Metrics.peak)
    occupancy_gauges

let test_cgsim_slices_match_stats () =
  let (stats, _), session = traced_cgsim_run () in
  let slice_sum = ref 0.0 and slice_count = ref 0 in
  Obs.Ring.iter session.Obs.Trace.ring (fun e ->
      if e.Obs.Event.phase = Obs.Event.Span && String.equal e.Obs.Event.name "slice" then begin
        slice_sum := !slice_sum +. e.Obs.Event.dur_ns;
        incr slice_count
      end);
  Alcotest.(check int) "one span per scheduler slice" stats.Cgsim.Sched.slices !slice_count;
  (* Same clock, same measurements: the trace must agree with the
     scheduler's own kernel-time accounting. *)
  let diff = Float.abs (!slice_sum -. stats.Cgsim.Sched.kernel_ns) in
  if diff > 1e-6 *. Float.max 1.0 stats.Cgsim.Sched.kernel_ns then
    Alcotest.failf "slice spans sum to %f ns but stats.kernel_ns is %f" !slice_sum
      stats.Cgsim.Sched.kernel_ns;
  Alcotest.(check bool) "kernel fraction consistent" true
    (Cgsim.Sched.kernel_fraction stats >= 0.0 && Cgsim.Sched.kernel_fraction stats <= 1.0)

let test_cgsim_blocked_time_recorded () =
  (* capacity 1 between two pass stages forces producer/consumer blocking *)
  let (_, _), session = traced_cgsim_run ~queue_capacity:1 () in
  let snap = Obs.Metrics.snapshot session.Obs.Trace.metrics in
  let blocked =
    List.filter
      (fun (h : Obs.Metrics.histo_snapshot) ->
        String.length h.Obs.Metrics.h_name >= 18
        && (String.sub h.Obs.Metrics.h_name 0 18 = "queue.blocked_put:"
           || String.sub h.Obs.Metrics.h_name 0 18 = "queue.blocked_get:"))
      snap.Obs.Metrics.histograms
  in
  Alcotest.(check bool) "blocked-time histograms present" true (blocked <> []);
  let parks =
    List.exists
      (fun (c : Obs.Metrics.counter_snapshot) ->
        c.Obs.Metrics.c_name = "sched.parks" && c.Obs.Metrics.total > 0.0)
      snap.Obs.Metrics.counters
  in
  Alcotest.(check bool) "parks counted" true parks

(* ------------------------------------------------------------------ *)
(* End-to-end: Chrome export parses back                              *)
(* ------------------------------------------------------------------ *)

let test_chrome_export_well_formed () =
  let (_, _), session = traced_cgsim_run () in
  let text = Obs.Export.chrome_json session in
  match Obs.Json.of_string text with
  | Error e -> Alcotest.failf "exported trace is not valid JSON: %s" e
  | Ok doc ->
    let events =
      match Option.bind (Obs.Json.member "traceEvents" doc) Obs.Json.to_list with
      | Some l -> l
      | None -> Alcotest.fail "no traceEvents array"
    in
    Alcotest.(check bool) "has events" true (List.length events > 10);
    let get_str k e = Option.bind (Obs.Json.member k e) Obs.Json.to_str in
    let get_num k e = Option.bind (Obs.Json.member k e) Obs.Json.to_float in
    let phases = List.filter_map (get_str "ph") events in
    List.iter
      (fun ph ->
        if not (List.mem ph [ "X"; "i"; "C"; "M" ]) then Alcotest.failf "unexpected ph %S" ph)
      phases;
    Alcotest.(check bool) "has slice spans" true
      (List.exists
         (fun e -> get_str "ph" e = Some "X" && get_str "cat" e = Some "sched")
         events);
    Alcotest.(check bool) "has queue events" true
      (List.exists (fun e -> get_str "cat" e = Some "queue") events);
    Alcotest.(check bool) "has thread metadata" true
      (List.exists (fun e -> get_str "name" e = Some "thread_name") events);
    (* Every non-metadata event needs a timestamp; spans need dur >= 0. *)
    List.iter
      (fun e ->
        match get_str "ph" e with
        | Some "M" -> ()
        | Some "X" ->
          (match get_num "ts" e, get_num "dur" e with
           | Some ts, Some dur when ts >= 0.0 && dur >= 0.0 -> ()
           | _ -> Alcotest.fail "span without valid ts/dur")
        | Some _ ->
          if get_num "ts" e = None then Alcotest.fail "event without ts"
        | None -> Alcotest.fail "event without ph")
      events

let test_csv_and_summary () =
  let (_, _), session = traced_cgsim_run () in
  let csv = Obs.Export.csv session in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check bool) "csv has header + rows" true (List.length lines > 2);
  Alcotest.(check string) "csv header"
    "ts_ns,dur_ns,phase,pid,track,cat,name,arg_key,arg_val" (List.hd lines);
  let summary = Obs.Export.summary session in
  Alcotest.(check bool) "summary mentions session" true
    (String.length summary > 0
    && String.sub summary 0 11 = "obs session")

(* ------------------------------------------------------------------ *)
(* End-to-end: x86sim instrumentation                                 *)
(* ------------------------------------------------------------------ *)

let test_x86sim_thread_spans () =
  let (stats, out), session =
    Obs.Trace.with_session (fun () ->
        let sink, contents = Cgsim.Io.int_buffer () in
        let stats =
          X86sim.Sim.run_exn
            ~config:Cgsim.Run_config.(with_queue_capacity 4 default)
            (pipe_graph ())
            ~sources:[ Cgsim.Io.of_int_array Cgsim.Dtype.I32 (Array.init 200 (fun i -> i)) ]
            ~sinks:[ sink ]
        in
        stats, contents ())
  in
  Alcotest.(check int) "all data through" 200 (Array.length out);
  let thread_spans = ref 0 in
  Obs.Ring.iter session.Obs.Trace.ring (fun e ->
      if e.Obs.Event.phase = Obs.Event.Span && String.equal e.Obs.Event.cat "thread" then
        incr thread_spans);
  Alcotest.(check int) "one lifetime span per OS thread" stats.X86sim.Sim.threads !thread_spans

let () =
  Alcotest.run "obs"
    [
      "clock", [ Alcotest.test_case "monotone" `Quick test_clock_monotone ];
      ( "ring",
        [
          Alcotest.test_case "fill" `Quick test_ring_fill;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "zero capacity" `Quick test_ring_rejects_zero_capacity;
        ] );
      "metrics", [ Alcotest.test_case "counters/gauges/histograms" `Quick test_metrics_basic ];
      ( "session",
        [
          Alcotest.test_case "single active session" `Quick test_session_single;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "off is no-op" `Quick test_emit_off_is_noop;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "cgsim",
        [
          Alcotest.test_case "occupancy bounded by capacity" `Quick test_cgsim_occupancy_bounded;
          Alcotest.test_case "slice spans match stats" `Quick test_cgsim_slices_match_stats;
          Alcotest.test_case "blocked time recorded" `Quick test_cgsim_blocked_time_recorded;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome JSON parses back" `Quick test_chrome_export_well_formed;
          Alcotest.test_case "csv and summary" `Quick test_csv_and_summary;
        ] );
      "x86sim", [ Alcotest.test_case "thread spans" `Quick test_x86sim_thread_spans ];
    ]

(* Tests for the lib/obs observability layer: ring-buffer wraparound,
   Chrome trace-event export (validated by parsing it back), span
   nesting, metrics, and end-to-end instrumentation consistency on real
   cgsim / x86sim runs. *)

(* ------------------------------------------------------------------ *)
(* Clock                                                              *)
(* ------------------------------------------------------------------ *)

let test_clock_monotone () =
  let prev = ref (Obs.Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_ns () in
    if t < !prev then Alcotest.failf "clock went backwards: %f after %f" t !prev;
    prev := t
  done

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                        *)
(* ------------------------------------------------------------------ *)

let emit_n ring n =
  for i = 1 to n do
    Obs.Ring.emit ring ~ts_ns:(float_of_int i) ~dur_ns:0.0 ~phase:Obs.Event.Instant
      ~name:(Printf.sprintf "e%d" i) ~track:"t" ~cat:"test" ~pid:1 ~a_key:"" ~a_val:0.0
  done

let test_ring_fill () =
  let ring = Obs.Ring.create ~capacity:8 in
  emit_n ring 5;
  Alcotest.(check int) "length" 5 (Obs.Ring.length ring);
  Alcotest.(check int) "dropped" 0 (Obs.Ring.dropped ring);
  let names = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.name) (Obs.Ring.to_list ring) in
  Alcotest.(check (list string)) "order" [ "e1"; "e2"; "e3"; "e4"; "e5" ] names

let test_ring_wraparound () =
  let ring = Obs.Ring.create ~capacity:8 in
  emit_n ring 20;
  Alcotest.(check int) "length capped" 8 (Obs.Ring.length ring);
  Alcotest.(check int) "dropped counts overflow" 12 (Obs.Ring.dropped ring);
  let events = Obs.Ring.to_list ring in
  let names = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.name) events in
  (* Oldest events fall out; the retained window is the tail, in order. *)
  Alcotest.(check (list string)) "newest retained, chronological"
    [ "e13"; "e14"; "e15"; "e16"; "e17"; "e18"; "e19"; "e20" ]
    names;
  let ts = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.ts_ns) events in
  Alcotest.(check bool) "timestamps ascending" true (List.sort compare ts = ts)

let test_ring_rejects_zero_capacity () =
  match Obs.Ring.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected"

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_metrics_basic () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "c";
  Obs.Metrics.add m "c" 4.0;
  Obs.Metrics.high_water m "g" 10.0;
  Obs.Metrics.high_water m "g" 3.0;
  List.iter (fun v -> Obs.Metrics.observe m "h" v) [ 1.0; 10.0; 100.0; 1000.0 ];
  let s = Obs.Metrics.snapshot m in
  (match s.Obs.Metrics.counters with
   | [ c ] ->
     Alcotest.(check string) "counter name" "c" c.Obs.Metrics.c_name;
     Alcotest.(check (float 0.0)) "counter total" 5.0 c.Obs.Metrics.total;
     Alcotest.(check int) "counter events" 2 c.Obs.Metrics.events
   | l -> Alcotest.failf "expected one counter, got %d" (List.length l));
  (match s.Obs.Metrics.gauges with
   | [ g ] -> Alcotest.(check (float 0.0)) "gauge keeps peak" 10.0 g.Obs.Metrics.peak
   | _ -> Alcotest.fail "expected one gauge");
  match s.Obs.Metrics.histograms with
  | [ h ] ->
    Alcotest.(check int) "histo count" 4 h.Obs.Metrics.count;
    Alcotest.(check (float 0.0)) "histo sum" 1111.0 h.Obs.Metrics.sum;
    Alcotest.(check (float 0.0)) "histo min" 1.0 h.Obs.Metrics.min_v;
    Alcotest.(check (float 0.0)) "histo max" 1000.0 h.Obs.Metrics.max_v;
    let p100 = Obs.Metrics.quantile h 1.0 in
    Alcotest.(check bool) "p100 clamps to max" true (p100 = 1000.0);
    let p25 = Obs.Metrics.quantile h 0.25 in
    Alcotest.(check bool) "p25 is near the low end" true (p25 <= 2.0)
  | _ -> Alcotest.fail "expected one histogram"

(* ------------------------------------------------------------------ *)
(* Session + span nesting                                             *)
(* ------------------------------------------------------------------ *)

let test_session_single () =
  let _, _s = Obs.Trace.with_session (fun () -> ()) in
  Alcotest.(check bool) "off after with_session" false (Obs.Trace.is_on ());
  let s = Obs.Trace.start () in
  (match Obs.Trace.start () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "nested start must be rejected");
  (match Obs.Trace.stop () with
   | Some s' -> Alcotest.(check bool) "stop returns the session" true (s == s')
   | None -> Alcotest.fail "stop lost the session");
  Alcotest.(check bool) "stopped_ns recorded" true (s.Obs.Trace.stopped_ns <> None)

let find_span name events =
  List.find_opt
    (fun (e : Obs.Event.t) -> e.Obs.Event.phase = Obs.Event.Span && e.Obs.Event.name = name)
    events

let test_span_nesting () =
  let (), session =
    Obs.Trace.with_session (fun () ->
        Obs.Trace.with_span ~track:"f" "outer" (fun () ->
            ignore (Sys.opaque_identity (Array.make 64 0));
            Obs.Trace.with_span ~track:"f" "inner" (fun () ->
                ignore (Sys.opaque_identity (Array.make 64 0)))))
  in
  let events = Obs.Ring.to_list session.Obs.Trace.ring in
  match find_span "outer" events, find_span "inner" events with
  | Some outer, Some inner ->
    let o0 = outer.Obs.Event.ts_ns and o1 = outer.Obs.Event.ts_ns +. outer.Obs.Event.dur_ns in
    let i0 = inner.Obs.Event.ts_ns and i1 = inner.Obs.Event.ts_ns +. inner.Obs.Event.dur_ns in
    Alcotest.(check bool) "inner starts within outer" true (i0 >= o0);
    Alcotest.(check bool) "inner ends within outer" true (i1 <= o1);
    Alcotest.(check bool) "durations non-negative" true
      (outer.Obs.Event.dur_ns >= 0.0 && inner.Obs.Event.dur_ns >= 0.0)
  | _ -> Alcotest.fail "outer/inner spans missing from the ring"

let test_emit_off_is_noop () =
  Alcotest.(check bool) "tracing off" false (Obs.Trace.is_on ());
  (* None of these may raise or leak anywhere observable. *)
  Obs.Trace.instant ~track:"x" "nothing";
  Obs.Trace.span ~track:"x" ~name:"nothing" ~ts_ns:0.0 ~dur_ns:1.0 ();
  Obs.Trace.incr_metric "nothing";
  Obs.Trace.observe_ns "nothing" 1.0;
  let (), session = Obs.Trace.with_session (fun () -> ()) in
  Alcotest.(check int) "prior emissions did not land in a later session" 0
    (Obs.Ring.length session.Obs.Trace.ring)

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        "s", Obs.Json.Str "a\"b\\c\nd\te";
        "n", Obs.Json.Num 42.0;
        "f", Obs.Json.Num 1.5;
        "b", Obs.Json.Bool true;
        "z", Obs.Json.Null;
        "l", Obs.Json.Arr [ Obs.Json.Num 1.0; Obs.Json.Str "x"; Obs.Json.Obj [] ];
      ]
  in
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" s)
    [ "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "{} trailing"; "" ]

(* ------------------------------------------------------------------ *)
(* End-to-end: cgsim instrumentation                                  *)
(* ------------------------------------------------------------------ *)

let pass_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"obs_pass"
    [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.I32; Cgsim.Kernel.out_port "out" Cgsim.Dtype.I32 ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
      while true do
        Cgsim.Port.put o (Cgsim.Port.get i)
      done)

let () = Cgsim.Registry.register pass_kernel

let pipe_graph () =
  Cgsim.Builder.make ~name:"obspipe" ~inputs:[ "x", Cgsim.Dtype.I32 ] (fun b conns ->
      let mid = Cgsim.Builder.net b Cgsim.Dtype.I32 in
      let out = Cgsim.Builder.net b Cgsim.Dtype.I32 in
      ignore (Cgsim.Builder.add_kernel b pass_kernel [ List.hd conns; mid ]);
      ignore (Cgsim.Builder.add_kernel b pass_kernel [ mid; out ]);
      [ out ])

let traced_cgsim_run ?(n = 500) ?(queue_capacity = 8) () =
  Obs.Trace.with_session (fun () ->
      let sink, contents = Cgsim.Io.int_buffer () in
      let stats =
        Cgsim.Runtime.execute_exn
          ~config:Cgsim.Run_config.(with_queue_capacity queue_capacity default)
          (pipe_graph ())
          ~sources:[ Cgsim.Io.of_int_array Cgsim.Dtype.I32 (Array.init n (fun i -> i)) ]
          ~sinks:[ sink ]
      in
      stats, contents ())

let test_cgsim_occupancy_bounded () =
  let (stats, out), session = traced_cgsim_run () in
  Alcotest.(check int) "all data through" 500 (Array.length out);
  Alcotest.(check bool) "fibers completed" true (stats.Cgsim.Sched.completed > 0);
  let snap = Obs.Metrics.snapshot session.Obs.Trace.metrics in
  let occupancy_gauges =
    List.filter
      (fun (g : Obs.Metrics.gauge_snapshot) ->
        String.length g.Obs.Metrics.g_name >= 19
        && String.sub g.Obs.Metrics.g_name 0 19 = "queue.occupancy_hw:")
      snap.Obs.Metrics.gauges
  in
  Alcotest.(check bool) "occupancy gauges recorded" true (occupancy_gauges <> []);
  List.iter
    (fun (g : Obs.Metrics.gauge_snapshot) ->
      if g.Obs.Metrics.peak > 8.0 then
        Alcotest.failf "%s exceeded capacity: %f" g.Obs.Metrics.g_name g.Obs.Metrics.peak)
    occupancy_gauges

let test_cgsim_slices_match_stats () =
  let (stats, _), session = traced_cgsim_run () in
  let slice_sum = ref 0.0 and slice_count = ref 0 in
  Obs.Ring.iter session.Obs.Trace.ring (fun e ->
      if e.Obs.Event.phase = Obs.Event.Span && String.equal e.Obs.Event.name "slice" then begin
        slice_sum := !slice_sum +. e.Obs.Event.dur_ns;
        incr slice_count
      end);
  Alcotest.(check int) "one span per scheduler slice" stats.Cgsim.Sched.slices !slice_count;
  (* Same clock, same measurements: the trace must agree with the
     scheduler's own kernel-time accounting. *)
  let diff = Float.abs (!slice_sum -. stats.Cgsim.Sched.kernel_ns) in
  if diff > 1e-6 *. Float.max 1.0 stats.Cgsim.Sched.kernel_ns then
    Alcotest.failf "slice spans sum to %f ns but stats.kernel_ns is %f" !slice_sum
      stats.Cgsim.Sched.kernel_ns;
  Alcotest.(check bool) "kernel fraction consistent" true
    (Cgsim.Sched.kernel_fraction stats >= 0.0 && Cgsim.Sched.kernel_fraction stats <= 1.0)

let test_cgsim_blocked_time_recorded () =
  (* capacity 1 between two pass stages forces producer/consumer blocking *)
  let (_, _), session = traced_cgsim_run ~queue_capacity:1 () in
  let snap = Obs.Metrics.snapshot session.Obs.Trace.metrics in
  let blocked =
    List.filter
      (fun (h : Obs.Metrics.histo_snapshot) ->
        String.length h.Obs.Metrics.h_name >= 18
        && (String.sub h.Obs.Metrics.h_name 0 18 = "queue.blocked_put:"
           || String.sub h.Obs.Metrics.h_name 0 18 = "queue.blocked_get:"))
      snap.Obs.Metrics.histograms
  in
  Alcotest.(check bool) "blocked-time histograms present" true (blocked <> []);
  let parks =
    List.exists
      (fun (c : Obs.Metrics.counter_snapshot) ->
        c.Obs.Metrics.c_name = "sched.parks" && c.Obs.Metrics.total > 0.0)
      snap.Obs.Metrics.counters
  in
  Alcotest.(check bool) "parks counted" true parks

(* ------------------------------------------------------------------ *)
(* End-to-end: Chrome export parses back                              *)
(* ------------------------------------------------------------------ *)

let test_chrome_export_well_formed () =
  let (_, _), session = traced_cgsim_run () in
  let text = Obs.Export.chrome_json session in
  match Obs.Json.of_string text with
  | Error e -> Alcotest.failf "exported trace is not valid JSON: %s" e
  | Ok doc ->
    let events =
      match Option.bind (Obs.Json.member "traceEvents" doc) Obs.Json.to_list with
      | Some l -> l
      | None -> Alcotest.fail "no traceEvents array"
    in
    Alcotest.(check bool) "has events" true (List.length events > 10);
    let get_str k e = Option.bind (Obs.Json.member k e) Obs.Json.to_str in
    let get_num k e = Option.bind (Obs.Json.member k e) Obs.Json.to_float in
    let phases = List.filter_map (get_str "ph") events in
    List.iter
      (fun ph ->
        if not (List.mem ph [ "X"; "i"; "C"; "M" ]) then Alcotest.failf "unexpected ph %S" ph)
      phases;
    Alcotest.(check bool) "has slice spans" true
      (List.exists
         (fun e -> get_str "ph" e = Some "X" && get_str "cat" e = Some "sched")
         events);
    Alcotest.(check bool) "has queue events" true
      (List.exists (fun e -> get_str "cat" e = Some "queue") events);
    Alcotest.(check bool) "has thread metadata" true
      (List.exists (fun e -> get_str "name" e = Some "thread_name") events);
    (* Every non-metadata event needs a timestamp; spans need dur >= 0. *)
    List.iter
      (fun e ->
        match get_str "ph" e with
        | Some "M" -> ()
        | Some "X" ->
          (match get_num "ts" e, get_num "dur" e with
           | Some ts, Some dur when ts >= 0.0 && dur >= 0.0 -> ()
           | _ -> Alcotest.fail "span without valid ts/dur")
        | Some _ ->
          if get_num "ts" e = None then Alcotest.fail "event without ts"
        | None -> Alcotest.fail "event without ph")
      events

let test_csv_and_summary () =
  let (_, _), session = traced_cgsim_run () in
  let csv = Obs.Export.csv session in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check bool) "csv has header + rows" true (List.length lines > 2);
  Alcotest.(check string) "csv header"
    "ts_ns,dur_ns,phase,pid,track,cat,name,arg_key,arg_val" (List.hd lines);
  let summary = Obs.Export.summary session in
  Alcotest.(check bool) "summary mentions session" true
    (String.length summary > 0
    && String.sub summary 0 11 = "obs session")

(* ------------------------------------------------------------------ *)
(* HDR histogram: advertised accuracy, checked against exact ranks     *)
(* ------------------------------------------------------------------ *)

(* The exact rank statistic Hdr.quantile approximates: with the same
   rank convention (ceil (q*n), clamped to [1,n]). *)
let exact_quantile values q =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
  List.nth sorted (rank - 1)

let positive_values =
  (* Spans the layout: exact integer range, several octaves, big values. *)
  QCheck.(list_of_size Gen.(int_range 1 200) (oneof [ float_range 0.0 500.0; float_range 0.0 5e9 ]))

let test_hdr_quantile_error_bound =
  QCheck.Test.make ~count:200 ~name:"Hdr.quantile within advertised relative error"
    positive_values (fun values ->
      QCheck.assume (values <> []);
      let h = Obs.Hdr.create () in
      List.iter (Obs.Hdr.record h) values;
      List.for_all
        (fun q ->
          let exact = exact_quantile values q in
          let got = Obs.Hdr.quantile h q in
          (* One-sided bucket upper bound: never below the exact value
             (minus the 0.5 ns record-time rounding), above it by at
             most rel_error plus 1 ns of rounding. *)
          got >= exact -. 0.5 -. 1e-9 && got -. exact <= (exact *. Obs.Hdr.rel_error) +. 1.0)
        [ 0.0; 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ])

let test_hdr_merge_commutes =
  QCheck.Test.make ~count:100 ~name:"Hdr.merge commutes and matches recording everything"
    (QCheck.pair positive_values positive_values) (fun (xs, ys) ->
      let record vs =
        let h = Obs.Hdr.create () in
        List.iter (Obs.Hdr.record h) vs;
        h
      in
      let ab = Obs.Hdr.merge (record xs) (record ys) in
      let ba = Obs.Hdr.merge (record ys) (record xs) in
      let all = record (xs @ ys) in
      Obs.Hdr.cumulative ab = Obs.Hdr.cumulative ba
      && Obs.Hdr.cumulative ab = Obs.Hdr.cumulative all
      && Obs.Hdr.count ab = List.length xs + List.length ys
      && List.for_all
           (fun q -> Obs.Hdr.quantile ab q = Obs.Hdr.quantile ba q)
           [ 0.5; 0.99; 0.999 ])

let test_hdr_basics () =
  let h = Obs.Hdr.create () in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Obs.Hdr.quantile h 0.5);
  (* Below sub_count the layout is exact: one integer per bucket. *)
  for i = 0 to 100 do
    Obs.Hdr.record h (float_of_int i)
  done;
  Alcotest.(check (float 0.0)) "exact small-range median" 50.0 (Obs.Hdr.quantile h 0.5);
  Alcotest.(check (float 0.0)) "p100 is max" 100.0 (Obs.Hdr.quantile h 1.0);
  Alcotest.(check int) "count" 101 (Obs.Hdr.count h);
  (* NaN and negatives clamp to zero instead of corrupting the layout. *)
  Obs.Hdr.record h Float.nan;
  Obs.Hdr.record h (-5.0);
  Alcotest.(check int) "hostile inputs still counted" 103 (Obs.Hdr.count h);
  Alcotest.(check (float 0.0)) "clamped to zero" 0.0 (Obs.Hdr.min_value h)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_flight_wraparound () =
  Obs.Flight.clear ();
  let n = Obs.Flight.capacity + 50 in
  for i = 1 to n do
    Obs.Flight.note Obs.Flight.Note ~arg:(float_of_int i) "w"
  done;
  Alcotest.(check int) "noted counts everything" n (Obs.Flight.noted ());
  let snap = Obs.Flight.snapshot () in
  Alcotest.(check int) "window capped at capacity" Obs.Flight.capacity (List.length snap);
  let args = List.map (fun (e : Obs.Flight.entry) -> e.Obs.Flight.fl_arg) snap in
  Alcotest.(check (float 0.0)) "oldest retained is n-capacity+1"
    (float_of_int (n - Obs.Flight.capacity + 1))
    (List.hd args);
  Alcotest.(check (float 0.0)) "newest retained is n" (float_of_int n) (List.nth args (Obs.Flight.capacity - 1));
  Alcotest.(check bool) "chronological" true (List.sort compare args = args);
  Obs.Flight.clear ();
  Alcotest.(check int) "clear resets" 0 (List.length (Obs.Flight.snapshot ()))

let test_flight_disabled () =
  Obs.Flight.clear ();
  Obs.Flight.set_enabled false;
  Obs.Flight.note Obs.Flight.Note "invisible";
  Obs.Flight.set_enabled true;
  Alcotest.(check int) "disabled notes dropped" 0 (List.length (Obs.Flight.snapshot ()));
  Obs.Flight.note Obs.Flight.Note "visible";
  Alcotest.(check int) "re-enabled notes land" 1 (List.length (Obs.Flight.snapshot ()));
  Obs.Flight.clear ()

let fail_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"obs_fail"
    [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.I32; Cgsim.Kernel.out_port "out" Cgsim.Dtype.I32 ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 in
      ignore (Cgsim.Port.get i);
      ignore (Cgsim.Kernel.wr b 0);
      failwith "obs_fail: boom")

let () = Cgsim.Registry.register fail_kernel

let fail_graph () =
  Cgsim.Builder.make ~name:"obsfail" ~inputs:[ "x", Cgsim.Dtype.I32 ] (fun b conns ->
      let out = Cgsim.Builder.net b Cgsim.Dtype.I32 in
      ignore (Cgsim.Builder.add_kernel b fail_kernel [ List.hd conns; out ]);
      [ out ])

(* The tentpole property: failure outcomes carry recent-history context
   with tracing OFF — the flight recorder runs unconditionally. *)
let test_flight_snapshot_on_failure () =
  Alcotest.(check bool) "tracing off" false (Obs.Trace.is_on ());
  let sink, _ = Cgsim.Io.int_buffer () in
  match
    Cgsim.Runtime.execute (fail_graph ())
      ~sources:[ Cgsim.Io.of_int_array Cgsim.Dtype.I32 (Array.init 16 (fun i -> i)) ]
      ~sinks:[ sink ]
  with
  | Cgsim.Runtime.Kernel_failed f ->
    Alcotest.(check bool) "flight snapshot non-empty" true (f.Cgsim.Runtime.f_flight <> []);
    Alcotest.(check bool) "records the body raise" true
      (List.exists
         (fun (e : Obs.Flight.entry) -> e.Obs.Flight.fl_kind = Obs.Flight.Body_raise)
         f.Cgsim.Runtime.f_flight);
    Alcotest.(check bool) "renders" true
      (String.length (Obs.Flight.render f.Cgsim.Runtime.f_flight) > 0)
  | o -> Alcotest.failf "expected Kernel_failed, got %a" Cgsim.Runtime.pp_outcome o

let test_flight_snapshot_on_deadline () =
  Alcotest.(check bool) "tracing off" false (Obs.Trace.is_on ());
  let sink, _ = Cgsim.Io.int_buffer () in
  match
    Cgsim.Runtime.execute
      ~config:Cgsim.Run_config.(with_max_steps 3 default)
      (pipe_graph ())
      ~sources:[ Cgsim.Io.of_int_array Cgsim.Dtype.I32 (Array.init 500 (fun i -> i)) ]
      ~sinks:[ sink ]
  with
  | Cgsim.Runtime.Deadline_exceeded p ->
    Alcotest.(check bool) "flight snapshot non-empty" true (p.Cgsim.Runtime.p_flight <> []);
    Alcotest.(check bool) "records scheduler slices" true
      (List.exists
         (fun (e : Obs.Flight.entry) -> e.Obs.Flight.fl_kind = Obs.Flight.Slice)
         p.Cgsim.Runtime.p_flight)
  | o -> Alcotest.failf "expected Deadline_exceeded, got %a" Cgsim.Runtime.pp_outcome o

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let test_prom_roundtrip () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "port.get:k0.in";
  Obs.Metrics.add m "port.get:k0.in" 41.0;
  Obs.Metrics.incr m "sched.parks";
  Obs.Metrics.high_water m "queue.occupancy_hw:g/net0" 7.0;
  List.iter (fun v -> Obs.Metrics.observe m "kernel.self_ns:k0" v) [ 10.0; 200.0; 3000.0 ];
  List.iter (fun v -> Obs.Metrics.observe m "pool.request" v) [ 1e6; 2e6 ];
  let text = Obs.Prom.of_snapshot (Obs.Metrics.snapshot m) in
  (match Obs.Prom.validate text with
   | Ok () -> ()
   | Error e -> Alcotest.failf "exposition rejected by own validator: %s\n%s" e text);
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      if not (contains needle) then Alcotest.failf "exposition missing %S:\n%s" needle text)
    [
      "# TYPE cgsim_port_get_total counter";
      "cgsim_port_get_total{id=\"k0.in\"} 42";
      "cgsim_sched_parks_total 1";
      "# TYPE cgsim_queue_occupancy_hw gauge";
      "# TYPE cgsim_kernel_self_ns histogram";
      "cgsim_kernel_self_ns_count{id=\"k0\"} 3";
      "cgsim_pool_request_bucket{le=\"+Inf\"} 2";
      "cgsim_pool_request_count 2";
    ]

let test_prom_validate_rejects () =
  List.iter
    (fun (label, text) ->
      match Obs.Prom.validate text with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "validator accepted %s" label)
    [
      "sample without TYPE", "cgsim_x_total 1\n";
      "bad type", "# TYPE cgsim_x rate\ncgsim_x 1\n";
      ( "buckets out of order",
        "# TYPE h histogram\nh_bucket{le=\"10\"} 2\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"+Inf\"} \
         3\nh_sum 1\nh_count 3\n" );
      ( "non-cumulative buckets",
        "# TYPE h histogram\nh_bucket{le=\"5\"} 3\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} \
         3\nh_sum 1\nh_count 3\n" );
      ( "inf bucket disagrees with count",
        "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"
      );
      "no +Inf bucket", "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_sum 1\nh_count 1\n";
      "missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n";
      "bad label syntax", "# TYPE g gauge\ng{id=unquoted} 1\n";
      "bad value", "# TYPE g gauge\ng{id=\"x\"} one\n";
      "stray comment", "# random noise\n";
    ]

let test_prom_of_real_session () =
  let (_, _), session = traced_cgsim_run () in
  let text = Obs.Prom.of_snapshot (Obs.Metrics.snapshot session.Obs.Trace.metrics) in
  match Obs.Prom.validate text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "session exposition invalid: %s" e

(* ------------------------------------------------------------------ *)
(* Per-kernel profiler                                                 *)
(* ------------------------------------------------------------------ *)

let test_profile_rows () =
  let (_, _), session = traced_cgsim_run () in
  let snap = Obs.Metrics.snapshot session.Obs.Trace.metrics in
  let rows = Obs.Profile.rows snap in
  Alcotest.(check bool) "profiles every fiber" true (List.length rows >= 2);
  let total_share = List.fold_left (fun a (r : Obs.Profile.row) -> a +. r.Obs.Profile.share) 0.0 rows in
  Alcotest.(check bool) "shares sum to 1" true (Float.abs (total_share -. 1.0) < 1e-9);
  let sorted =
    List.for_all2
      (fun (a : Obs.Profile.row) (b : Obs.Profile.row) -> a.Obs.Profile.self_ns >= b.Obs.Profile.self_ns)
      (List.filteri (fun i _ -> i < List.length rows - 1) rows)
      (List.tl rows)
  in
  Alcotest.(check bool) "sorted by self time" true sorted;
  let folded = Obs.Profile.collapsed snap in
  List.iter
    (fun line ->
      if line <> "" then
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "collapsed line without count: %S" line
        | Some i ->
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          (match float_of_string_opt v with
           | Some f when f >= 0.0 -> ()
           | _ -> Alcotest.failf "collapsed count not a number: %S" line);
          if not (String.length line > 6 && String.sub line 0 6 = "cgsim;") then
            Alcotest.failf "collapsed frame without root: %S" line)
    (String.split_on_char '\n' folded)

(* ------------------------------------------------------------------ *)
(* End-to-end: x86sim instrumentation                                 *)
(* ------------------------------------------------------------------ *)

let test_x86sim_thread_spans () =
  let (stats, out), session =
    Obs.Trace.with_session (fun () ->
        let sink, contents = Cgsim.Io.int_buffer () in
        let stats =
          X86sim.Sim.run_exn
            ~config:Cgsim.Run_config.(with_queue_capacity 4 default)
            (pipe_graph ())
            ~sources:[ Cgsim.Io.of_int_array Cgsim.Dtype.I32 (Array.init 200 (fun i -> i)) ]
            ~sinks:[ sink ]
        in
        stats, contents ())
  in
  Alcotest.(check int) "all data through" 200 (Array.length out);
  let thread_spans = ref 0 in
  Obs.Ring.iter session.Obs.Trace.ring (fun e ->
      if e.Obs.Event.phase = Obs.Event.Span && String.equal e.Obs.Event.cat "thread" then
        incr thread_spans);
  Alcotest.(check int) "one lifetime span per OS thread" stats.X86sim.Sim.threads !thread_spans

let () =
  Alcotest.run "obs"
    [
      "clock", [ Alcotest.test_case "monotone" `Quick test_clock_monotone ];
      ( "ring",
        [
          Alcotest.test_case "fill" `Quick test_ring_fill;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "zero capacity" `Quick test_ring_rejects_zero_capacity;
        ] );
      "metrics", [ Alcotest.test_case "counters/gauges/histograms" `Quick test_metrics_basic ];
      ( "session",
        [
          Alcotest.test_case "single active session" `Quick test_session_single;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "off is no-op" `Quick test_emit_off_is_noop;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "cgsim",
        [
          Alcotest.test_case "occupancy bounded by capacity" `Quick test_cgsim_occupancy_bounded;
          Alcotest.test_case "slice spans match stats" `Quick test_cgsim_slices_match_stats;
          Alcotest.test_case "blocked time recorded" `Quick test_cgsim_blocked_time_recorded;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome JSON parses back" `Quick test_chrome_export_well_formed;
          Alcotest.test_case "csv and summary" `Quick test_csv_and_summary;
        ] );
      "x86sim", [ Alcotest.test_case "thread spans" `Quick test_x86sim_thread_spans ];
      ( "hdr",
        Alcotest.test_case "basics and hostile inputs" `Quick test_hdr_basics
        :: List.map
             (QCheck_alcotest.to_alcotest ~long:false)
             [ test_hdr_quantile_error_bound; test_hdr_merge_commutes ] );
      ( "flight",
        [
          Alcotest.test_case "wraparound" `Quick test_flight_wraparound;
          Alcotest.test_case "kill switch" `Quick test_flight_disabled;
          Alcotest.test_case "snapshot on kernel failure (tracing off)" `Quick
            test_flight_snapshot_on_failure;
          Alcotest.test_case "snapshot on deadline (tracing off)" `Quick
            test_flight_snapshot_on_deadline;
        ] );
      ( "prom",
        [
          Alcotest.test_case "snapshot renders and validates" `Quick test_prom_roundtrip;
          Alcotest.test_case "validator rejects malformed text" `Quick test_prom_validate_rejects;
          Alcotest.test_case "real session exposition valid" `Quick test_prom_of_real_session;
        ] );
      "profile", [ Alcotest.test_case "rows, shares and collapsed stacks" `Quick test_profile_rows ];
    ]

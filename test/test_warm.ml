(* Warm-instance serving tests: the compile-once / reset lifecycle must
   be observationally identical to fresh instantiation — across all four
   evaluation apps, with the SPSC and block-IO fast paths on and off,
   under deterministic fault injection, and after failed or
   fuel-exhausted runs — and pure-graph request batching must demultiplex
   outputs exactly as per-request execution would. *)

module R = Cgsim.Runtime

(* ------------------------------------------------------------------ *)
(* Fixtures                                                           *)
(* ------------------------------------------------------------------ *)

(* Elementwise doubler declared pure + stateless: batching-eligible. *)
let pure_scale =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"warm_scale" ~pure:true ~stateless:true
    [
      Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32;
    ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
      while true do
        Cgsim.Port.put_f32 o (2.0 *. Cgsim.Port.get_f32 i)
      done)

(* Running-sum kernel: pure (state is local to the body closure, so
   pool-safe) but NOT stateless — its output depends on everything seen
   so far, so concatenating requests would corrupt all but the first. *)
let prefix_sum_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"warm_prefix_sum" ~pure:true
    [
      Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32;
    ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
      let acc = ref 0.0 in
      while true do
        acc := !acc +. Cgsim.Port.get_f32 i;
        Cgsim.Port.put_f32 o !acc
      done)

(* Identity kernel that never declared its purity: batching-ineligible. *)
let opaque_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"warm_opaque"
    [
      Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32;
    ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
      while true do
        Cgsim.Port.put_f32 o (Cgsim.Port.get_f32 i)
      done)

let () =
  Cgsim.Registry.register pure_scale;
  Cgsim.Registry.register prefix_sum_kernel;
  Cgsim.Registry.register opaque_kernel

(* in -> warm_scale_0 -> warm_scale_1 -> out  (x4 elementwise) *)
let pure_graph () =
  Cgsim.Builder.make ~name:"warm_pure_chain" ~inputs:[ "x", Cgsim.Dtype.F32 ]
    (fun b conns ->
      let mid = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      ignore (Cgsim.Builder.add_kernel b pure_scale [ List.hd conns; mid ]);
      ignore (Cgsim.Builder.add_kernel b pure_scale [ mid; out ]);
      [ out ])

let prefix_sum_graph () =
  Cgsim.Builder.make ~name:"warm_prefix_graph" ~inputs:[ "x", Cgsim.Dtype.F32 ]
    (fun b conns ->
      let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      ignore (Cgsim.Builder.add_kernel b prefix_sum_kernel [ List.hd conns; out ]);
      [ out ])

let opaque_graph () =
  Cgsim.Builder.make ~name:"warm_opaque_graph" ~inputs:[ "x", Cgsim.Dtype.F32 ]
    (fun b conns ->
      let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      ignore (Cgsim.Builder.add_kernel b opaque_kernel [ List.hd conns; out ]);
      [ out ])

let values_equal msg (a : Cgsim.Value.t list) (b : Cgsim.Value.t list) =
  Alcotest.(check int) (msg ^ ": output count") (List.length a) (List.length b);
  Alcotest.(check bool) (msg ^ ": outputs equal") true
    (List.for_all2 Cgsim.Value.equal a b)

let run_checked msg (h : Apps.Harness.t) inst ~reps =
  let sinks, contents = h.Apps.Harness.make_sinks () in
  (match R.run inst ~sources:(h.Apps.Harness.sources ~reps) ~sinks with
   | R.Completed _ -> ()
   | o -> Alcotest.failf "%s: expected Completed, got %a" msg R.pp_outcome o);
  let out = contents () in
  (match h.Apps.Harness.check ~reps out with
   | Ok () -> ()
   | Error e -> Alcotest.failf "%s: %s" msg e);
  out

(* ------------------------------------------------------------------ *)
(* Reset equivalence across apps and fast-path configurations         *)
(* ------------------------------------------------------------------ *)

let fastpath_configs =
  Cgsim.Run_config.
    [
      "default", default;
      "spsc-off", with_spsc false default;
      "block-io-off", with_block_io false default;
      "both-off", (default |> with_spsc false |> with_block_io false);
    ]

(* reset-and-rerun == fresh run, for every app under every fast-path
   combination.  The first run after [new_instance] is the fresh
   baseline; the post-reset run must match it bit for bit. *)
let test_reset_matches_fresh_all_apps () =
  List.iter
    (fun (h : Apps.Harness.t) ->
      List.iter
        (fun (cname, config) ->
          let label = Printf.sprintf "%s/%s" h.Apps.Harness.name cname in
          let compiled = R.compile ~config (h.Apps.Harness.graph ()) in
          let inst = R.new_instance compiled in
          let fresh = run_checked (label ^ " fresh") h inst ~reps:2 in
          R.reset inst;
          let warm = run_checked (label ^ " after reset") h inst ~reps:2 in
          values_equal label fresh warm)
        fastpath_configs)
    Apps.Harness.all

(* Many reset cycles on one instance: no drift, no resource leak into
   wrong answers. *)
let test_reset_many_cycles () =
  let h = Apps.Harness.bitonic in
  let inst = R.new_instance (R.compile (h.Apps.Harness.graph ())) in
  let baseline = run_checked "cycle 0" h inst ~reps:3 in
  for cycle = 1 to 5 do
    R.reset inst;
    let out = run_checked (Printf.sprintf "cycle %d" cycle) h inst ~reps:3 in
    values_equal (Printf.sprintf "cycle %d" cycle) baseline out
  done

let test_reset_during_run_rejected () =
  let h = Apps.Harness.bitonic in
  let inst = R.new_instance (R.compile (h.Apps.Harness.graph ())) in
  ignore (run_checked "pre" h inst ~reps:1);
  (* A used instance refuses a second run until reset. *)
  let sinks, _ = h.Apps.Harness.make_sinks () in
  (match R.run inst ~sources:(h.Apps.Harness.sources ~reps:1) ~sinks with
   | exception R.Runtime_error msg ->
     Alcotest.(check bool) ("mentions reset: " ^ msg) true
       (let nl = String.length "reset" in
        let rec at i =
          i + nl <= String.length msg && (String.sub msg i nl = "reset" || at (i + 1))
        in
        at 0)
   | _ -> Alcotest.fail "second run without reset must raise");
  R.reset inst;
  ignore (run_checked "post" h inst ~reps:1)

(* ------------------------------------------------------------------ *)
(* Reset equivalence under deterministic fault injection              *)
(* ------------------------------------------------------------------ *)

(* Two identically-seeded fault plans drive two sequences of three runs:
   one re-instantiating from scratch every time, one resetting a single
   warm instance.  Outcome labels and sink contents (including the
   partial output of the faulted run) must agree run by run. *)
let test_reset_equivalence_under_faults () =
  let h = Apps.Harness.bitonic in
  let specs seed =
    Cgsim.Faults.plan ~seed [ Cgsim.Faults.raise_on ~kernel:"*" ~after:1 ~fires:1 () ]
  in
  let run_sequence make_inst =
    List.map
      (fun i ->
        let inst = make_inst () in
        let sinks, contents = h.Apps.Harness.make_sinks () in
        let o = R.run inst ~sources:(h.Apps.Harness.sources ~reps:1) ~sinks in
        ignore i;
        R.outcome_label o, contents ())
      [ 0; 1; 2 ]
  in
  let fresh_cfg = Cgsim.Run_config.(with_faults (specs 11) default) in
  let fresh_graph = h.Apps.Harness.graph () in
  let fresh_seq =
    run_sequence (fun () -> R.instantiate ~config:fresh_cfg fresh_graph)
  in
  let warm_cfg = Cgsim.Run_config.(with_faults (specs 11) default) in
  let warm_inst = ref None in
  let warm_seq =
    run_sequence (fun () ->
        match !warm_inst with
        | None ->
          let inst = R.new_instance (R.compile ~config:warm_cfg (h.Apps.Harness.graph ())) in
          warm_inst := Some inst;
          inst
        | Some inst ->
          R.reset inst;
          inst)
  in
  List.iteri
    (fun i ((fl, fo), (wl, wo)) ->
      Alcotest.(check string) (Printf.sprintf "run %d outcome" i) fl wl;
      values_equal (Printf.sprintf "run %d" i) fo wo)
    (List.combine fresh_seq warm_seq);
  (* The fire budget must have been spent exactly once per sequence:
     first run fails, the rest complete. *)
  match fresh_seq with
  | (l0, _) :: rest ->
    Alcotest.(check string) "first run faulted" "failed" l0;
    List.iter (fun (l, _) -> Alcotest.(check string) "later runs clean" "completed" l) rest
  | [] -> assert false

(* A poisoned instance — one whose run ended in [Kernel_failed] — must
   reset to a clean, correct instance. *)
let test_reset_after_kernel_failed () =
  let h = Apps.Harness.farrow in
  let faults = Cgsim.Faults.plan ~seed:7 [ Cgsim.Faults.raise_on ~kernel:"*" ~after:1 ~fires:1 () ] in
  let config = Cgsim.Run_config.(with_faults faults default) in
  let inst = R.new_instance (R.compile ~config (h.Apps.Harness.graph ())) in
  let sinks, _ = h.Apps.Harness.make_sinks () in
  (match R.run inst ~sources:(h.Apps.Harness.sources ~reps:1) ~sinks with
   | R.Kernel_failed f ->
     (match f.R.f_exn with
      | Cgsim.Faults.Injected _ -> ()
      | e -> Alcotest.failf "unexpected failure exn %s" (Printexc.to_string e))
   | o -> Alcotest.failf "expected Kernel_failed, got %a" R.pp_outcome o);
  R.reset inst;
  ignore (run_checked "after Kernel_failed + reset" h inst ~reps:2)

(* Same for a run stopped by the fuel budget ([Deadline_exceeded] with
   [`Max_steps]): a one-shot stall burns the fuel, the reset instance
   then completes well inside the same budget. *)
let test_reset_after_max_steps () =
  let h = Apps.Harness.bitonic in
  let faults = Cgsim.Faults.plan ~seed:3 [ Cgsim.Faults.stall_on ~kernel:"*" ~after:1 ~fires:1 () ] in
  let config = Cgsim.Run_config.(default |> with_faults faults |> with_max_steps 100_000) in
  let inst = R.new_instance (R.compile ~config (h.Apps.Harness.graph ())) in
  let sinks, _ = h.Apps.Harness.make_sinks () in
  (match R.run inst ~sources:(h.Apps.Harness.sources ~reps:1) ~sinks with
   | R.Deadline_exceeded p ->
     Alcotest.(check bool) "stopped by fuel" true (p.R.p_reason = `Max_steps)
   | o -> Alcotest.failf "expected Deadline_exceeded, got %a" R.pp_outcome o);
  R.reset inst;
  ignore (run_checked "after Max_steps + reset" h inst ~reps:2)

(* ------------------------------------------------------------------ *)
(* Compiled-graph properties                                          *)
(* ------------------------------------------------------------------ *)

let test_compiled_purity_and_analysis () =
  Alcotest.(check bool) "stateless chain is batching-safe" true
    (Analysis.Pool_safety.batching_safe (pure_graph ()));
  Alcotest.(check bool) "pure-but-stateful graph is not" false
    (Analysis.Pool_safety.batching_safe (prefix_sum_graph ()));
  Alcotest.(check bool) "unannotated graph is not" false
    (Analysis.Pool_safety.batching_safe (opaque_graph ()));
  Alcotest.(check bool) "compiled_batchable agrees (stateless)" true
    (R.compiled_batchable (R.compile (pure_graph ())));
  Alcotest.(check bool) "compiled_pure but not batchable (prefix sum)" true
    (let c = R.compile (prefix_sum_graph ()) in
     R.compiled_pure c && not (R.compiled_batchable c));
  Alcotest.(check bool) "compiled_pure agrees (opaque)" false
    (R.compiled_pure (R.compile (opaque_graph ())));
  (* ~stateless requires ~pure:true. *)
  (match
     Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"warm_bad" ~stateless:true
       [ Cgsim.Kernel.out_port "o" Cgsim.Dtype.F32 ]
       (fun _ -> ())
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "~stateless without ~pure:true must be rejected");
  (* Every evaluation app is pool-safe (pure), but only the windowed
     block-independent apps are concatenation-safe: the farrow and IIR
     filters carry delay lines across their input stream. *)
  List.iter
    (fun (h : Apps.Harness.t) ->
      let expected =
        match h.Apps.Harness.name with
        | "bitonic" | "bilinear" -> true
        | _ -> false
      in
      Alcotest.(check bool) (h.Apps.Harness.name ^ " batching-safe") expected
        (Analysis.Pool_safety.batching_safe (h.Apps.Harness.graph ())))
    Apps.Harness.all

(* ------------------------------------------------------------------ *)
(* Pool batching                                                      *)
(* ------------------------------------------------------------------ *)

let n_requests = 8
let req_len = 8

let request_input r = Array.init req_len (fun i -> float_of_int ((r * 100) + i))

let pool_io bufs r =
  let sink, contents = Cgsim.Io.f32_buffer () in
  bufs.(r) <- contents;
  [ Cgsim.Io.of_f32_array (request_input r) ], [ sink ]

let check_scaled_outputs msg (stats : Cgsim.Pool.stats) bufs =
  Array.iteri
    (fun r (res : Cgsim.Pool.request_result) ->
      (match res.Cgsim.Pool.outcome with
       | R.Completed _ -> ()
       | o -> Alcotest.failf "%s: request %d: %a" msg r R.pp_outcome o);
      let expected = Array.map (fun v -> 4.0 *. v) (request_input r) in
      Alcotest.(check (array (float 1e-6)))
        (Printf.sprintf "%s: request %d output" msg r)
        expected (bufs.(r) ()))
    stats.Cgsim.Pool.results

(* Pure graph, batch 4, equal-length requests: every request is served
   through a multiplexed warm run and each demuxed output slice is
   exactly what per-request execution produces. *)
let test_batching_demux () =
  Cgsim.Pool.clear_warm_cache ();
  let g = pure_graph () in
  let bufs = Array.make n_requests (fun () -> [||]) in
  let config = Cgsim.Run_config.(with_batch 4 default) in
  let stats =
    Cgsim.Pool.run ~config ~domains:1 ~requests:n_requests ~io:(pool_io bufs) g
  in
  Alcotest.(check int) "all requests batched" n_requests stats.Cgsim.Pool.batched;
  check_scaled_outputs "batched" stats bufs;
  (* And the same requests served without batching agree. *)
  let bufs_cold = Array.make n_requests (fun () -> [||]) in
  let cold_cfg = Cgsim.Run_config.(with_warm false default) in
  let cold =
    Cgsim.Pool.run ~config:cold_cfg ~domains:1 ~requests:n_requests ~io:(pool_io bufs_cold) g
  in
  Alcotest.(check int) "cold path never batches" 0 cold.Cgsim.Pool.batched;
  check_scaled_outputs "cold" cold bufs_cold;
  Array.iteri
    (fun r buf ->
      Alcotest.(check (array (float 1e-6)))
        (Printf.sprintf "request %d batched == cold" r)
        (bufs_cold.(r) ()) (buf ()))
    bufs

(* Mismatched request lengths make a batch ineligible: the pool falls
   back to individual execution and still answers every request. *)
let test_batching_fallback_on_ragged_lengths () =
  Cgsim.Pool.clear_warm_cache ();
  let g = pure_graph () in
  let inputs = Array.init n_requests (fun r -> Array.init (4 + r) float_of_int) in
  let bufs = Array.make n_requests (fun () -> [||]) in
  let io r =
    let sink, contents = Cgsim.Io.f32_buffer () in
    bufs.(r) <- contents;
    [ Cgsim.Io.of_f32_array inputs.(r) ], [ sink ]
  in
  let config = Cgsim.Run_config.(with_batch 4 default) in
  let stats = Cgsim.Pool.run ~config ~domains:1 ~requests:n_requests ~io g in
  Alcotest.(check int) "ragged batch not multiplexed" 0 stats.Cgsim.Pool.batched;
  Array.iteri
    (fun r (res : Cgsim.Pool.request_result) ->
      (match res.Cgsim.Pool.outcome with
       | R.Completed _ -> ()
       | o -> Alcotest.failf "request %d: %a" r R.pp_outcome o);
      Alcotest.(check (array (float 1e-6)))
        (Printf.sprintf "request %d output" r)
        (Array.map (fun v -> 4.0 *. v) inputs.(r))
        (bufs.(r) ()))
    stats.Cgsim.Pool.results

(* A pure-but-stateful graph (prefix sum) must not be batched: each
   request's running sum has to start from zero. *)
let test_batching_requires_statelessness () =
  Cgsim.Pool.clear_warm_cache ();
  let g = prefix_sum_graph () in
  let bufs = Array.make n_requests (fun () -> [||]) in
  let config = Cgsim.Run_config.(with_batch 4 default) in
  let stats =
    Cgsim.Pool.run ~config ~domains:1 ~requests:n_requests ~io:(pool_io bufs) g
  in
  Alcotest.(check int) "pure-but-stateful never batched" 0 stats.Cgsim.Pool.batched;
  Array.iteri
    (fun r (res : Cgsim.Pool.request_result) ->
      (match res.Cgsim.Pool.outcome with
       | R.Completed _ -> ()
       | o -> Alcotest.failf "request %d: %a" r R.pp_outcome o);
      let acc = ref 0.0 in
      let expected =
        Array.map
          (fun v ->
            acc := !acc +. v;
            !acc)
          (request_input r)
      in
      Alcotest.(check (array (float 1e-6)))
        (Printf.sprintf "request %d prefix sum restarts at zero" r)
        expected (bufs.(r) ()))
    stats.Cgsim.Pool.results

(* A graph whose kernels never declared purity must not be batched even
   when the caller asks for it. *)
let test_batching_requires_purity () =
  Cgsim.Pool.clear_warm_cache ();
  let g = opaque_graph () in
  let bufs = Array.make n_requests (fun () -> [||]) in
  let config = Cgsim.Run_config.(with_batch 4 default) in
  let stats =
    Cgsim.Pool.run ~config ~domains:1 ~requests:n_requests ~io:(pool_io bufs) g
  in
  Alcotest.(check int) "unknown purity never batched" 0 stats.Cgsim.Pool.batched;
  Array.iteri
    (fun r (res : Cgsim.Pool.request_result) ->
      (match res.Cgsim.Pool.outcome with
       | R.Completed _ -> ()
       | o -> Alcotest.failf "request %d: %a" r R.pp_outcome o);
      Alcotest.(check (array (float 1e-6)))
        (Printf.sprintf "request %d identity output" r)
        (request_input r) (bufs.(r) ()))
    stats.Cgsim.Pool.results

(* Warm pool reuse across requests: after the first build per domain,
   requests are served from reset instances. *)
let test_warm_reuse_counts () =
  Cgsim.Pool.clear_warm_cache ();
  let g = pure_graph () in
  let bufs = Array.make n_requests (fun () -> [||]) in
  let stats = Cgsim.Pool.run ~domains:1 ~requests:n_requests ~io:(pool_io bufs) g in
  check_scaled_outputs "warm" stats bufs;
  Alcotest.(check bool) "at most one cold build" true (stats.Cgsim.Pool.cold_builds <= 1);
  Alcotest.(check int) "the rest are warm hits" (n_requests - stats.Cgsim.Pool.cold_builds)
    stats.Cgsim.Pool.warm_hits

let () =
  Alcotest.run "warm"
    [
      ( "reset-equivalence",
        [
          Alcotest.test_case "reset matches fresh (all apps, fast paths)" `Quick
            test_reset_matches_fresh_all_apps;
          Alcotest.test_case "many reset cycles" `Quick test_reset_many_cycles;
          Alcotest.test_case "second run without reset rejected" `Quick
            test_reset_during_run_rejected;
        ] );
      ( "reset-faults",
        [
          Alcotest.test_case "fresh vs warm under seeded faults" `Quick
            test_reset_equivalence_under_faults;
          Alcotest.test_case "reset after Kernel_failed" `Quick test_reset_after_kernel_failed;
          Alcotest.test_case "reset after Max_steps" `Quick test_reset_after_max_steps;
        ] );
      ( "purity",
        [
          Alcotest.test_case "compiled_pure and batching_safe agree" `Quick
            test_compiled_purity_and_analysis;
        ] );
      ( "batching",
        [
          Alcotest.test_case "demux matches per-request execution" `Quick test_batching_demux;
          Alcotest.test_case "ragged lengths fall back" `Quick
            test_batching_fallback_on_ragged_lengths;
          Alcotest.test_case "pure-but-stateful never batched" `Quick
            test_batching_requires_statelessness;
          Alcotest.test_case "unknown purity never batched" `Quick test_batching_requires_purity;
          Alcotest.test_case "warm reuse counts" `Quick test_warm_reuse_counts;
        ] );
    ]

(* Differential validation of the static analyses at generator scale.

   Workloads.Sdf_gen builds seeded random SDF graphs — balanced by
   construction, with labelled injected defects — and its [check] oracle
   holds every lint verdict against actual runtime behaviour (cgsim and
   x86sim).  These tests sweep the deterministic case mix, pin the
   auto-capacity minimality claim (the suggested depth completes, one
   element less deadlocks), and state the Rates.solve contract as qcheck
   properties over the generator's seed space.  Everything derives from
   explicit seeds: a failure here reproduces exactly. *)

module G = Workloads.Sdf_gen
module O = Sdf_oracle
module D = Cgsim.Diagnostic

let check_agrees name case =
  match O.check case with
  | [] -> ()
  | problems ->
    Alcotest.failf "%s (%s): %d disagreement(s):\n  %s" name case.G.c_name
      (List.length problems)
      (String.concat "\n  " problems)

(* ------------------------------------------------------------------ *)
(* Differential oracle sweeps                                          *)
(* ------------------------------------------------------------------ *)

(* Two full cycles of the 6-case mix (3 clean + one of each defect) —
   the quick gate; the scale sweep below covers hundreds more. *)
let test_oracle_mix () =
  for i = 0 to 11 do
    check_agrees "mix" (G.nth_case i)
  done

let test_oracle_each_defect () =
  List.iter
    (fun defect ->
      for seed = 0 to 9 do
        check_agrees (G.defect_to_string defect) (G.generate ~defect ~seed ())
      done)
    [ G.Imbalance; G.Under_capacity; G.Starved_cycle ]

(* The at-scale run: hundreds of graphs, zero tolerance.  [run_suite]
   uses the same deterministic mix as `bench fuzz`, so any failure here
   reproduces under the bench harness with the same index. *)
let test_oracle_at_scale () =
  match O.run_suite 504 with
  | [] -> ()
  | problems ->
    Alcotest.failf "%d disagreement(s) over 504 graphs:\n  %s" (List.length problems)
      (String.concat "\n  " (List.filteri (fun i _ -> i < 10) problems))

(* ------------------------------------------------------------------ *)
(* Capacity synthesis: exactness of the suggested depths               *)
(* ------------------------------------------------------------------ *)

let deadlocked (outcome : Cgsim.Runtime.outcome) =
  match outcome with
  | Cgsim.Runtime.Completed stats -> stats.Cgsim.Sched.cancelled > 0
  | Cgsim.Runtime.Deadline_exceeded _ | Cgsim.Runtime.Cancelled -> true
  | _ -> false

let run_graph g input =
  let config =
    Cgsim.Run_config.(default |> with_lint `Off |> with_max_steps 10_000_000)
  in
  let inst = Cgsim.Runtime.new_instance (Cgsim.Runtime.compile ~config g) in
  let sink, contents = Cgsim.Io.f32_buffer () in
  let outcome =
    Cgsim.Runtime.run inst ~sources:[ Cgsim.Io.of_f32_array input ] ~sinks:[ sink ]
  in
  outcome, contents ()

(* An under-capacitated cycle: the suggestion must be exactly minimal —
   the suggested depth completes, depth-1 deadlocks again, and the
   repaired graph draws no further suggestions. *)
let test_capacity_minimality () =
  for seed = 0 to 4 do
    let case = G.generate ~defect:G.Under_capacity ~seed () in
    let fb =
      match case.G.c_fb_net with
      | Some id -> id
      | None -> Alcotest.failf "seed %d: under-capacity case lost its cycle" seed
    in
    let need = case.G.c_fb_need in
    let suggested = Analysis.Capacity.suggest case.G.c_graph in
    Alcotest.(check (option int))
      (Printf.sprintf "seed %d: suggested depth is the cycle demand" seed)
      (Some need)
      (List.assoc_opt fb suggested);
    let at g depth = Cgsim.Serialized.with_net_depths g [ fb, depth ] in
    let outcome_need, out = run_graph (at case.G.c_graph need) case.G.c_input in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: suggested depth completes" seed)
      false (deadlocked outcome_need);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: complete output" seed)
      case.G.c_expected_out (Array.length out);
    let outcome_less, _ = run_graph (at case.G.c_graph (need - 1)) case.G.c_input in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: one element less deadlocks" seed)
      true (deadlocked outcome_less);
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "seed %d: repaired graph suggests nothing" seed)
      []
      (Analysis.Capacity.suggest (at case.G.c_graph need))
  done

(* Runtime.compile applies the same suggestion behind auto_capacity. *)
let test_auto_capacity_rescues () =
  let case = G.generate ~defect:G.Under_capacity ~seed:11 () in
  let config =
    Cgsim.Run_config.(
      default |> with_lint `Off |> with_max_steps 10_000_000 |> with_auto_capacity true)
  in
  let inst = Cgsim.Runtime.new_instance (Cgsim.Runtime.compile ~config case.G.c_graph) in
  let sink, contents = Cgsim.Io.f32_buffer () in
  let outcome =
    Cgsim.Runtime.run inst ~sources:[ Cgsim.Io.of_f32_array case.G.c_input ] ~sinks:[ sink ]
  in
  Alcotest.(check bool) "auto_capacity completes the under-buffered cycle" false
    (deadlocked outcome);
  Alcotest.(check int) "full output" case.G.c_expected_out (Array.length (contents ()))

(* ------------------------------------------------------------------ *)
(* Rates.solve properties over the generator's seed space              *)
(* ------------------------------------------------------------------ *)

let prop_solve_balanced =
  QCheck.Test.make ~name:"Rates.solve balanced on every generator-balanced graph"
    ~count:80
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let case = G.generate ~seed () in
      let sol = Analysis.Rates.solve case.G.c_graph in
      sol.Analysis.Rates.balanced
      && List.length sol.Analysis.Rates.repetitions
         = Array.length case.G.c_graph.Cgsim.Serialized.kernels
      && List.for_all (fun (_, r) -> r >= 1) sol.Analysis.Rates.repetitions)

let prop_solve_flags_imbalance =
  QCheck.Test.make ~name:"Rates.solve flags every injected imbalance" ~count:80
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let case = G.generate ~defect:G.Imbalance ~seed () in
      not (Analysis.Rates.solve case.G.c_graph).Analysis.Rates.balanced)

(* The same two claims swept deterministically, so the contract is
   pinned on a fixed seed range regardless of qcheck's own PRNG. *)
let test_solve_deterministic_sweep () =
  for seed = 100 to 149 do
    let clean = G.generate ~seed () in
    if not (Analysis.Rates.solve clean.G.c_graph).Analysis.Rates.balanced then
      Alcotest.failf "seed %d: balanced graph reported unbalanced" seed;
    let bad = G.generate ~defect:G.Imbalance ~seed () in
    if (Analysis.Rates.solve bad.G.c_graph).Analysis.Rates.balanced then
      Alcotest.failf "seed %d: injected imbalance not flagged" seed
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "oracle",
        [
          Alcotest.test_case "deterministic mix" `Quick test_oracle_mix;
          Alcotest.test_case "each defect x 10 seeds" `Quick test_oracle_each_defect;
          Alcotest.test_case "504 graphs at scale" `Slow test_oracle_at_scale;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "suggestions are exactly minimal" `Quick
            test_capacity_minimality;
          Alcotest.test_case "auto_capacity rescues at compile" `Quick
            test_auto_capacity_rescues;
        ] );
      ( "rates",
        [ Alcotest.test_case "deterministic sweep" `Quick test_solve_deterministic_sweep ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_solve_balanced; prop_solve_flags_imbalance ] );
    ]

(* Tests for the AIE ISA-emulation layer: vector semantics, fixed-point
   rounding, the trace recorder (including pipelined-loop suppression),
   and graph-level failure injection on the cgsim runtime. *)

(* ------------------------------------------------------------------ *)
(* Vec: functional semantics                                          *)
(* ------------------------------------------------------------------ *)

let test_vec_lane_ops () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] and b = [| 10.0; 20.0; 30.0; 40.0 |] in
  Alcotest.(check (array (float 0.0))) "fadd" [| 11.0; 22.0; 33.0; 44.0 |] (Aie.Vec.fadd a b);
  Alcotest.(check (array (float 0.0))) "fmul" [| 10.0; 40.0; 90.0; 160.0 |] (Aie.Vec.fmul a b);
  Alcotest.(check (array (float 0.0))) "fmac"
    [| 11.0; 42.0; 93.0; 164.0 |]
    (Aie.Vec.fmac b a b |> fun v -> ignore v; Aie.Vec.fmac [| 1.0; 2.0; 3.0; 4.0 |] a b);
  Alcotest.(check (array (float 0.0))) "fmax" b (Aie.Vec.fmax a b);
  Alcotest.(check (array (float 0.0))) "fmin" a (Aie.Vec.fmin a b)

let test_vec_lane_mismatch () =
  match Aie.Vec.fadd [| 1.0 |] [| 1.0; 2.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lane mismatch must be rejected"

let test_vec_shuffle () =
  let v = [| 10.0; 11.0; 12.0; 13.0 |] in
  Alcotest.(check (array (float 0.0))) "reverse" [| 13.0; 12.0; 11.0; 10.0 |]
    (Aie.Vec.fshuffle v [| 3; 2; 1; 0 |]);
  (match Aie.Vec.fshuffle v [| 4 |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "out-of-range shuffle index must be rejected");
  Alcotest.(check (array (float 0.0))) "select"
    [| 10.0; 21.0; 12.0; 23.0 |]
    (Aie.Vec.fselect [| true; false; true; false |] v [| 20.0; 21.0; 22.0; 23.0 |])

let test_vec_srs_semantics () =
  (* Round to nearest (add half, arithmetic shift), saturate. *)
  (* ties round toward +inf: -0.5 becomes 0 *)
  Alcotest.(check (array int)) "round" [| 1; 2; 0 |]
    (Aie.Vec.srs Cgsim.Dtype.I16 15 [| 16384; 49152; -16384 |]);
  Alcotest.(check (array int)) "half rounds up" [| 1 |] (Aie.Vec.srs Cgsim.Dtype.I16 1 [| 1 |]);
  Alcotest.(check (array int)) "saturate" [| 32767; -32768 |]
    (Aie.Vec.srs Cgsim.Dtype.I16 0 [| 1000000; -1000000 |]);
  Alcotest.(check (array int)) "ups" [| 256; -512 |] (Aie.Vec.ups 8 [| 1; -2 |]);
  match Aie.Vec.srs Cgsim.Dtype.I16 (-1) [| 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative shift must be rejected"

let prop_srs_monotone =
  QCheck.Test.make ~name:"srs is monotone" ~count:300
    QCheck.(pair (int_range (-1000000) 1000000) (int_range 0 1000))
    (fun (x, d) ->
      let lo = Aie.Vec.srs Cgsim.Dtype.I16 15 [| x |] in
      let hi = Aie.Vec.srs Cgsim.Dtype.I16 15 [| x + d |] in
      hi.(0) >= lo.(0))

let test_vec_f32_rounding () =
  (* fadd results are rounded to single precision. *)
  let big = 16777216.0 (* 2^24 *) in
  let r = Aie.Vec.fadd [| big |] [| 1.0 |] in
  Alcotest.(check (float 0.0)) "f32 precision loss" big r.(0)

(* ------------------------------------------------------------------ *)
(* Intrinsics: cost emission                                          *)
(* ------------------------------------------------------------------ *)

let with_recording f =
  let r = Aie.Trace.create_recorder () in
  Aie.Trace.bind "<host>" r;
  Aie.Trace.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Aie.Trace.enabled := false;
      Aie.Trace.unbind "<host>")
    f;
  Aie.Trace.events r

let test_intrinsics_emit_costs () =
  let a16 = Array.make 16 1.0 in
  let events =
    with_recording (fun () ->
        ignore (Aie.Intrinsics.fpmac (Array.make 16 0.0) a16 a16);
        ignore (Aie.Intrinsics.mac16 (Array.make 32 0) (Array.make 32 1) (Array.make 32 2));
        ignore (Aie.Intrinsics.load_f32 (Array.make 64 0.0) 0 8);
        Aie.Intrinsics.scalar_op "addr")
  in
  match events with
  | [ Aie.Trace.Vop { name = "fpmac"; slots = 2 };  (* 16 fp lanes = 2 slots *)
      Aie.Trace.Vop { name = "mac16"; slots = 1 };  (* 32 i16 lanes = 1 slot *)
      Aie.Trace.Load { bytes = 32 };
      Aie.Trace.Sop { name = "addr"; count = 1 } ] ->
    ()
  | evs ->
    Alcotest.failf "unexpected events: %s"
      (String.concat "; " (List.map (Format.asprintf "%a" Aie.Trace.pp_event) evs))

let test_intrinsics_disabled_is_silent () =
  let r = Aie.Trace.create_recorder () in
  Aie.Trace.bind "<host>" r;
  (* enabled = false: nothing may be recorded *)
  ignore (Aie.Intrinsics.fpadd [| 1.0 |] [| 2.0 |]);
  Aie.Trace.unbind "<host>";
  Alcotest.(check int) "no events" 0 (Aie.Trace.event_count r)

let test_intrinsics_bounds () =
  match Aie.Intrinsics.load_f32 (Array.make 4 0.0) 2 8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range vector load must be rejected"

(* ------------------------------------------------------------------ *)
(* Trace: pipelined-loop recording                                    *)
(* ------------------------------------------------------------------ *)

let test_trace_loop_suppression () =
  let executions = ref 0 in
  let events =
    with_recording (fun () ->
        Aie.Trace.with_pipelined_loop ~trip:10 (fun _ ->
            incr executions;
            Aie.Trace.vop "body"))
  in
  Alcotest.(check int) "body ran trip times" 10 !executions;
  match events with
  | [ Aie.Trace.Loop_enter { trip = 10 }; Aie.Trace.Vop { name = "body"; _ }; Aie.Trace.Loop_exit ]
    ->
    ()
  | evs -> Alcotest.failf "expected one recorded iteration, got %d events" (List.length evs)

let test_trace_loop_abort_marker () =
  let events =
    with_recording (fun () ->
        try
          Aie.Trace.with_pipelined_loop ~trip:10 (fun _ ->
              Aie.Trace.vop "partial";
              raise Exit)
        with Exit -> ())
  in
  match events with
  | [ Aie.Trace.Loop_enter _; Aie.Trace.Vop _; Aie.Trace.Loop_abort ] -> ()
  | evs -> Alcotest.failf "expected abort marker, got %d events" (List.length evs)

let test_trace_zero_trip () =
  let events = with_recording (fun () -> Aie.Trace.with_pipelined_loop ~trip:0 (fun _ -> ())) in
  Alcotest.(check int) "no events for empty loop" 0 (List.length events)

(* The abort path as it actually occurs in a graph run: the input stream
   drains while iteration 0 of a pipelined loop is being recorded, so
   [Cgsim.Port.get] raises [End_of_stream] mid-body.  The region must be
   closed with [Loop_abort] (so replay does not multiply a partial body
   by the trip count) and the run must still terminate cleanly. *)
let loop4_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"fi_loop4"
    [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.I32; Cgsim.Kernel.out_port "out" Cgsim.Dtype.I32 ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
      while true do
        Aie.Trace.with_pipelined_loop ~trip:4 (fun _ ->
            Aie.Trace.vop "work";
            Cgsim.Port.put o (Cgsim.Port.get i))
      done)

let () = Cgsim.Registry.register loop4_kernel

let test_trace_loop_abort_on_end_of_stream () =
  let g =
    Cgsim.Builder.make ~name:"abortg" ~inputs:[ "x", Cgsim.Dtype.I32 ] (fun b conns ->
        let out = Cgsim.Builder.net b Cgsim.Dtype.I32 in
        ignore (Cgsim.Builder.add_kernel b ~inst:"abortk" loop4_kernel [ List.hd conns; out ]);
        [ out ])
  in
  let r = Aie.Trace.create_recorder () in
  Aie.Trace.bind "abortk" r;
  Aie.Trace.enabled := true;
  let sink, contents = Cgsim.Io.int_buffer () in
  Fun.protect
    ~finally:(fun () ->
      Aie.Trace.enabled := false;
      Aie.Trace.unbind "abortk")
    (fun () ->
      (* Exactly one full trip of input: the second loop region's first
         body read hits the drained stream. *)
      ignore
        (Cgsim.Runtime.execute_exn g
           ~sources:[ Cgsim.Io.of_int_array Cgsim.Dtype.I32 [| 1; 2; 3; 4 |] ]
           ~sinks:[ sink ]));
  Alcotest.(check (array int)) "full first trip delivered" [| 1; 2; 3; 4 |] (contents ());
  match Aie.Trace.events r with
  | [
   Aie.Trace.Loop_enter { trip = 4 };
   Aie.Trace.Vop { name = "work"; _ };
   Aie.Trace.Loop_exit;
   Aie.Trace.Loop_enter { trip = 4 };
   Aie.Trace.Vop { name = "work"; _ };
   Aie.Trace.Loop_abort;
  ] ->
    ()
  | evs ->
    Alcotest.failf "unexpected event sequence: %s"
      (String.concat "; " (List.map (Format.asprintf "%a" Aie.Trace.pp_event) evs))

(* ------------------------------------------------------------------ *)
(* Failure injection at graph level                                   *)
(* ------------------------------------------------------------------ *)

let pass_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"fi_pass"
    [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.I32; Cgsim.Kernel.out_port "out" Cgsim.Dtype.I32 ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
      while true do
        Cgsim.Port.put o (Cgsim.Port.get i)
      done)

let sum2_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"fi_sum2"
    [
      Cgsim.Kernel.in_port "a" Cgsim.Dtype.I32;
      Cgsim.Kernel.in_port "b" Cgsim.Dtype.I32;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.I32;
    ]
    (fun bd ->
      let a = Cgsim.Kernel.rd bd 0 and b = Cgsim.Kernel.rd bd 1 and o = Cgsim.Kernel.wr bd 0 in
      while true do
        let x = Cgsim.Port.get_int a in
        let y = Cgsim.Port.get_int b in
        Cgsim.Port.put_int o (x + y)
      done)

let () =
  Cgsim.Registry.register pass_kernel;
  Cgsim.Registry.register sum2_kernel

let test_cyclic_graph_terminates () =
  (* A feedback loop with no initial token deadlocks; the run must END
     (fibers cancelled), not hang — the paper's "no explicit termination
     condition" semantics. *)
  let g =
    Cgsim.Builder.make ~name:"cycle" ~inputs:[ "x", Cgsim.Dtype.I32 ] (fun b conns ->
        let fb = Cgsim.Builder.net b Cgsim.Dtype.I32 in
        let out = Cgsim.Builder.net b Cgsim.Dtype.I32 in
        (* sum2 needs both the input and its own (never-written-first)
           feedback, so nothing can ever fire. *)
        ignore (Cgsim.Builder.add_kernel b sum2_kernel [ List.hd conns; fb; out ]);
        ignore (Cgsim.Builder.add_kernel b pass_kernel [ out; fb ]);
        [ out ])
  in
  let sink, contents = Cgsim.Io.buffer () in
  let stats =
    Cgsim.Runtime.execute_exn g
      ~sources:[ Cgsim.Io.of_int_array Cgsim.Dtype.I32 [| 1; 2; 3 |] ]
      ~sinks:[ sink ]
  in
  Alcotest.(check (list string)) "no output" [] (List.map Cgsim.Value.to_string (contents ()));
  Alcotest.(check bool) "stalled fibers were cancelled" true (stats.Cgsim.Sched.cancelled > 0)

let test_unbalanced_merge_drains () =
  (* Merge of two finite streams of different lengths: the kernel reads
     alternately, so once the shorter source closes it ends mid-protocol;
     everything must still terminate cleanly. *)
  let g =
    Cgsim.Builder.make ~name:"unbalanced"
      ~inputs:[ "a", Cgsim.Dtype.I32; "b", Cgsim.Dtype.I32 ]
      (fun bd conns ->
        match conns with
        | [ a; b ] ->
          let out = Cgsim.Builder.net bd Cgsim.Dtype.I32 in
          ignore (Cgsim.Builder.add_kernel bd sum2_kernel [ a; b; out ]);
          [ out ]
        | _ -> assert false)
  in
  let sink, contents = Cgsim.Io.int_buffer () in
  let _ =
    Cgsim.Runtime.execute_exn g
      ~sources:
        [
          Cgsim.Io.of_int_array Cgsim.Dtype.I32 [| 1; 2; 3; 4; 5 |];
          Cgsim.Io.of_int_array Cgsim.Dtype.I32 [| 10; 20 |];
        ]
      ~sinks:[ sink ]
  in
  Alcotest.(check (array int)) "pairs up to the shorter stream" [| 11; 22 |] (contents ())

let test_aiesim_rejects_partial_blocks () =
  (* bilinear's pipelined loop needs whole 256-quad blocks; feeding a
     partial block must surface as a clean error, not a hang. *)
  let h = Apps.Harness.bilinear in
  let quads = Workloads.Images.random_quads ~seed:3 100 (* not a multiple of 256 *) in
  let sink = Cgsim.Io.null () in
  match
    Aiesim.Sim.run
      (Aiesim.Deploy.baseline (h.Apps.Harness.graph ()))
      ~sources:[ Cgsim.Io.of_array (Array.map Apps.Bilinear.quad_value quads) ]
      ~sinks:[ sink ]
  with
  | exception Aiesim.Sim.Sim_error _ -> ()
  | _report ->
    (* Acceptable too: the partial tail may replay as an aborted region. *)
    ()

let () =
  Alcotest.run "aie"
    [
      ( "vec",
        [
          Alcotest.test_case "lane ops" `Quick test_vec_lane_ops;
          Alcotest.test_case "lane mismatch" `Quick test_vec_lane_mismatch;
          Alcotest.test_case "shuffle/select" `Quick test_vec_shuffle;
          Alcotest.test_case "srs semantics" `Quick test_vec_srs_semantics;
          Alcotest.test_case "f32 rounding" `Quick test_vec_f32_rounding;
          QCheck_alcotest.to_alcotest prop_srs_monotone;
        ] );
      ( "intrinsics",
        [
          Alcotest.test_case "cost emission" `Quick test_intrinsics_emit_costs;
          Alcotest.test_case "disabled is silent" `Quick test_intrinsics_disabled_is_silent;
          Alcotest.test_case "bounds" `Quick test_intrinsics_bounds;
        ] );
      ( "trace",
        [
          Alcotest.test_case "loop suppression" `Quick test_trace_loop_suppression;
          Alcotest.test_case "loop abort marker" `Quick test_trace_loop_abort_marker;
          Alcotest.test_case "zero trip" `Quick test_trace_zero_trip;
          Alcotest.test_case "abort on end of stream" `Quick
            test_trace_loop_abort_on_end_of_stream;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "cyclic graph terminates" `Quick test_cyclic_graph_terminates;
          Alcotest.test_case "unbalanced merge drains" `Quick test_unbalanced_merge_drains;
          Alcotest.test_case "partial blocks rejected" `Quick test_aiesim_rejects_partial_blocks;
        ] );
    ]

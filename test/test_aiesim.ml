(* Tests for the cycle-approximate AIE simulator: the VLIW issue model,
   the trace-to-segment compiler, the array/placement model, deployment
   descriptors, and end-to-end timing behaviours. *)

(* ------------------------------------------------------------------ *)
(* Array model                                                        *)
(* ------------------------------------------------------------------ *)

let test_array_auto_placement () =
  let a = Aie.Array_model.create ~cols:4 ~rows:2 () in
  let c1 = Aie.Array_model.place a ~name:"k1" in
  let c2 = Aie.Array_model.place a ~name:"k2" in
  Alcotest.(check bool) "first tile col 0 row 1" true
    (Aie.Array_model.equal_coord c1 { Aie.Array_model.col = 0; row = 1 });
  Alcotest.(check bool) "second tile col 0 row 2" true
    (Aie.Array_model.equal_coord c2 { Aie.Array_model.col = 0; row = 2 });
  Alcotest.(check bool) "lookup" true
    (match Aie.Array_model.placement a ~name:"k1" with
     | Some c -> Aie.Array_model.equal_coord c c1
     | None -> false)

let test_array_full () =
  let a = Aie.Array_model.create ~cols:1 ~rows:1 () in
  ignore (Aie.Array_model.place a ~name:"only");
  match Aie.Array_model.place a ~name:"overflow" with
  | exception Aie.Array_model.Placement_error _ -> ()
  | _ -> Alcotest.fail "full array must reject placements"

let test_array_pinning_conflicts () =
  let a = Aie.Array_model.create ~cols:4 ~rows:2 () in
  let c = { Aie.Array_model.col = 2; row = 1 } in
  ignore (Aie.Array_model.place_at a ~name:"pinned" c);
  (match Aie.Array_model.place_at a ~name:"other" c with
   | exception Aie.Array_model.Placement_error _ -> ()
   | _ -> Alcotest.fail "occupied tile must be rejected");
  match Aie.Array_model.place_at a ~name:"bad" { Aie.Array_model.col = 9; row = 1 } with
  | exception Aie.Array_model.Placement_error _ -> ()
  | _ -> Alcotest.fail "out-of-grid tile must be rejected"

let test_array_hops () =
  let neighbour =
    Aie.Array_model.hops { Aie.Array_model.col = 0; row = 1 } { Aie.Array_model.col = 0; row = 2 }
  in
  Alcotest.(check int) "neighbours share memory: 0 hops" 0 neighbour;
  let far =
    Aie.Array_model.hops { Aie.Array_model.col = 0; row = 1 } { Aie.Array_model.col = 3; row = 2 }
  in
  Alcotest.(check int) "manhattan distance" 4 far;
  Alcotest.(check int) "latency scales" (4 * Aie.Cfg.stream_hop_latency_cycles)
    (Aie.Array_model.route_latency_cycles far)

(* ------------------------------------------------------------------ *)
(* VLIW issue model                                                   *)
(* ------------------------------------------------------------------ *)

let usage ~vec ~scl ~ld ~st ~srd ~swr = { Aiesim.Vliw.vec; scl; ld; st; srd; swr }

let test_vliw_packing () =
  let u = usage ~vec:4 ~scl:2 ~ld:0 ~st:0 ~srd:0 ~swr:0 in
  Alcotest.(check int) "vector-bound" 4 (Aiesim.Vliw.cycles u);
  let u = usage ~vec:1 ~scl:0 ~ld:8 ~st:0 ~srd:0 ~swr:0 in
  Alcotest.(check int) "two load units" 4 (Aiesim.Vliw.cycles u);
  let u = usage ~vec:0 ~scl:0 ~ld:0 ~st:0 ~srd:0 ~swr:0 in
  Alcotest.(check int) "empty region" 0 (Aiesim.Vliw.cycles u)

let test_vliw_loop () =
  let u = usage ~vec:3 ~scl:1 ~ld:0 ~st:0 ~srd:0 ~swr:0 in
  Alcotest.(check int) "II * trip + fill" ((3 * 10) + Aie.Cfg.pipeline_depth)
    (Aiesim.Vliw.loop_cycles u ~trip:10);
  Alcotest.(check int) "zero-trip loop free" 0 (Aiesim.Vliw.loop_cycles u ~trip:0)

let test_vliw_load_beats () =
  let u = Aiesim.Vliw.empty () in
  Aiesim.Vliw.add_load_bytes u 64;
  (* 64 B = 2 beats of 32 B across 2 load units = 1 cycle *)
  Alcotest.(check int) "64B load" 1 (Aiesim.Vliw.cycles u)

(* ------------------------------------------------------------------ *)
(* Segment compilation                                                *)
(* ------------------------------------------------------------------ *)

let env = { Aiesim.Segments.chan_of_port = (fun p -> int_of_string p) }

let test_segments_straightline () =
  let events =
    [
      Aie.Trace.Iteration_mark;
      Aie.Trace.Vop { name = "fpmac"; slots = 2 };
      Aie.Trace.Vop { name = "fpmac"; slots = 2 };
      Aie.Trace.Port_write { port = "3"; bytes = 4; transport = Aie.Trace.Stream; thunked = false };
    ]
  in
  match Aiesim.Segments.compile ~env ~thunked:false events with
  | [ Aiesim.Segments.Compute inv; Mark; Compute 4; Wr { chan = 3; bytes = 4; core = 1 } ] ->
    Alcotest.(check int) "invocation overhead" Aie.Cfg.kernel_invocation_overhead_cycles inv
  | segs ->
    Alcotest.failf "unexpected segments: %s"
      (String.concat "; " (List.map (Format.asprintf "%a" Aiesim.Segments.pp_seg) segs))

let test_segments_thunk_cost () =
  let read =
    Aie.Trace.Port_read { port = "1"; bytes = 4; transport = Aie.Trace.Stream; thunked = true }
  in
  let plain = Aiesim.Segments.compile ~env ~thunked:true [ read ] in
  (* The thunk's scalar overhead lands in a compute region before the
     stream access. *)
  match plain with
  | [ Aiesim.Segments.Compute c; Rd _ ] ->
    Alcotest.(check int) "thunk scalar cycles" !Aie.Cfg.thunk_scalar_ops_per_stream_access c
  | segs ->
    Alcotest.failf "unexpected segments: %s"
      (String.concat "; " (List.map (Format.asprintf "%a" Aiesim.Segments.pp_seg) segs))

let test_segments_window_coalescing () =
  (* Two full 8-byte windows read element-wise: one Win_in per window,
     element traffic coalesced into compute loads. *)
  let rd = Aie.Trace.Port_read { port = "2"; bytes = 4; transport = Aie.Trace.Window 8; thunked = false } in
  let events = [ rd; rd; rd; rd ] in
  let segs = Aiesim.Segments.compile ~env ~thunked:false events in
  let win_ins =
    List.length
      (List.filter (function Aiesim.Segments.Win_in _ -> true | _ -> false) segs)
  in
  Alcotest.(check int) "two window acquires" 2 win_ins

let test_segments_pipelined_loop () =
  let events =
    [
      Aie.Trace.Loop_enter { trip = 64 };
      Aie.Trace.Vop { name = "mac"; slots = 2 };
      Aie.Trace.Port_read { port = "0"; bytes = 4; transport = Aie.Trace.Stream; thunked = false };
      Aie.Trace.Loop_exit;
    ]
  in
  let segs = Aiesim.Segments.compile ~env ~thunked:false events in
  let total_rd_bytes =
    List.fold_left
      (fun acc -> function Aiesim.Segments.Rd { bytes; _ } -> acc + bytes | _ -> acc)
      0 segs
  in
  Alcotest.(check int) "aggregated traffic preserved" (64 * 4) total_rd_bytes;
  let compute =
    List.fold_left
      (fun acc -> function Aiesim.Segments.Compute c -> acc + c | _ -> acc)
      0 segs
  in
  (* II = max(vec 2, srd 1) = 2; total = 2*64 + pipeline fill *)
  Alcotest.(check int) "loop cycles" ((2 * 64) + Aie.Cfg.pipeline_depth) compute

let test_segments_aborted_loop_not_scaled () =
  let events =
    [
      Aie.Trace.Loop_enter { trip = 64 };
      Aie.Trace.Port_read { port = "0"; bytes = 4; transport = Aie.Trace.Stream; thunked = false };
      Aie.Trace.Loop_abort;
    ]
  in
  let segs = Aiesim.Segments.compile ~env ~thunked:false events in
  let total_rd_bytes =
    List.fold_left
      (fun acc -> function Aiesim.Segments.Rd { bytes; _ } -> acc + bytes | _ -> acc)
      0 segs
  in
  Alcotest.(check int) "only the partial iteration's traffic" 4 total_rd_bytes

let test_segments_unbalanced_loop () =
  match Aiesim.Segments.compile ~env ~thunked:false [ Aie.Trace.Loop_exit ] with
  | exception Aiesim.Segments.Compile_error _ -> ()
  | _ -> Alcotest.fail "stray Loop_exit must be rejected"

(* ------------------------------------------------------------------ *)
(* Deploy                                                             *)
(* ------------------------------------------------------------------ *)

let test_deploy_places_all_kernels () =
  let d = Aiesim.Deploy.baseline (Apps.Farrow.graph ()) in
  ignore (Aiesim.Deploy.coord_of d "farrow_stage1_0");
  ignore (Aiesim.Deploy.coord_of d "farrow_stage2_0")

let test_deploy_rejects_foreign_realms () =
  let host =
    Cgsim.Kernel.define ~realm:Cgsim.Kernel.Noextract ~name:"aiesim_host_kernel"
      [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32; Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32 ]
      (fun b ->
        let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
        while true do
          Cgsim.Port.put o (Cgsim.Port.get i)
        done)
  in
  Cgsim.Registry.register host;
  let g =
    Cgsim.Builder.make ~name:"hosty" ~inputs:[ "x", Cgsim.Dtype.F32 ] (fun b conns ->
        let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel b host [ List.hd conns; out ]);
        [ out ])
  in
  match Aiesim.Deploy.baseline g with
  | exception Aiesim.Deploy.Deploy_error _ -> ()
  | _ -> Alcotest.fail "non-AIE kernels cannot deploy to the array"

(* ------------------------------------------------------------------ *)
(* End-to-end timing behaviour                                        *)
(* ------------------------------------------------------------------ *)

let run_app (h : Apps.Harness.t) deploy reps =
  let sinks, contents = h.Apps.Harness.make_sinks () in
  let report = Aiesim.Sim.run deploy ~sources:(h.Apps.Harness.sources ~reps) ~sinks in
  report, contents ()

let test_sim_outputs_match_cgsim () =
  List.iter
    (fun (h : Apps.Harness.t) ->
      let reps = 2 in
      let _, aiesim_out = run_app h (Aiesim.Deploy.baseline (h.Apps.Harness.graph ())) reps in
      let sinks, contents = h.Apps.Harness.make_sinks () in
      let _ =
        Cgsim.Runtime.execute_exn (h.Apps.Harness.graph ())
          ~sources:(h.Apps.Harness.sources ~reps) ~sinks
      in
      let cgsim_out = contents () in
      if not (List.for_all2 Cgsim.Value.equal aiesim_out cgsim_out) then
        Alcotest.failf "%s: aiesim functional outputs differ from cgsim" h.Apps.Harness.name)
    Apps.Harness.all

let test_sim_thunk_never_faster () =
  List.iter
    (fun (h : Apps.Harness.t) ->
      let base, _ = run_app h (Aiesim.Deploy.baseline (h.Apps.Harness.graph ())) 4 in
      let extr, _ = run_app h (Aiesim.Deploy.extracted (h.Apps.Harness.graph ())) 4 in
      if extr.Aiesim.Sim.ns_per_block +. 1e-9 < base.Aiesim.Sim.ns_per_block then
        Alcotest.failf "%s: extracted deploy is faster than hand-written (%.1f < %.1f)"
          h.Apps.Harness.name extr.Aiesim.Sim.ns_per_block base.Aiesim.Sim.ns_per_block)
    Apps.Harness.all

let test_sim_window_kernel_parity () =
  (* The IIR uses window I/O exclusively: the thunk's per-window constant
     must cost (almost) nothing relative to the block time. *)
  let h = Apps.Harness.iir in
  let base, _ = run_app h (Aiesim.Deploy.baseline (h.Apps.Harness.graph ())) 4 in
  let extr, _ = run_app h (Aiesim.Deploy.extracted (h.Apps.Harness.graph ())) 4 in
  let rel = Aiesim.Sim.relative_throughput_percent ~baseline:base ~extracted:extr in
  Alcotest.(check bool) (Printf.sprintf "iir parity (got %.2f%%)" rel) true (rel > 98.0)

let test_sim_stream_kernels_pay () =
  List.iter
    (fun name ->
      let h = Option.get (Apps.Harness.find name) in
      let base, _ = run_app h (Aiesim.Deploy.baseline (h.Apps.Harness.graph ())) 4 in
      let extr, _ = run_app h (Aiesim.Deploy.extracted (h.Apps.Harness.graph ())) 4 in
      let rel = Aiesim.Sim.relative_throughput_percent ~baseline:base ~extracted:extr in
      Alcotest.(check bool)
        (Printf.sprintf "%s: 60%% < rel (%.2f%%) < 97%%" name rel)
        true
        (rel > 60.0 && rel < 97.0))
    [ "bitonic"; "farrow"; "bilinear" ]

let test_sim_blocks_counted () =
  let h = Apps.Harness.bitonic in
  let report, _ = run_app h (Aiesim.Deploy.baseline (h.Apps.Harness.graph ())) 10 in
  Alcotest.(check int) "ten iterations observed" 10 report.Aiesim.Sim.blocks

let gmio_copy_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"gmio_copy_kernel"
    [
      Cgsim.Kernel.in_port "in" Cgsim.Dtype.I32 ~settings:Cgsim.Settings.gmio;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.I32 ~settings:Cgsim.Settings.gmio;
    ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
      while true do
        Aie.Trace.mark_iteration ();
        Cgsim.Port.put_int o (Cgsim.Port.get_int i + 1)
      done)

let () = Cgsim.Registry.register gmio_copy_kernel

let test_sim_gmio_transport () =
  let g =
    Cgsim.Builder.make ~name:"gmio_graph" ~inputs:[ "ddr_in", Cgsim.Dtype.I32 ] (fun b conns ->
        let out = Cgsim.Builder.net b Cgsim.Dtype.I32 in
        ignore (Cgsim.Builder.add_kernel b gmio_copy_kernel [ List.hd conns; out ]);
        [ out ])
  in
  let sink, contents = Cgsim.Io.int_buffer () in
  let input = Array.init 64 (fun i -> i) in
  let report =
    Aiesim.Sim.run (Aiesim.Deploy.baseline g)
      ~sources:[ Cgsim.Io.of_int_array Cgsim.Dtype.I32 input ]
      ~sinks:[ sink ]
  in
  Alcotest.(check (array int)) "functional" (Array.map (fun x -> x + 1) input) (contents ());
  (* The kernel marks before its first (blocking) DDR read, so the
     access latency appears from the second iteration onward. *)
  let k = List.hd report.Aiesim.Sim.kernels in
  let second_mark =
    match k.Aiesim.Sim.marks with _ :: m :: _ -> m | _ -> Alcotest.fail "need two marks"
  in
  Alcotest.(check bool)
    (Printf.sprintf "gmio latency visible (%.0f cyc)" second_mark)
    true
    (second_mark >= float_of_int Aie.Cfg.gmio_latency_cycles)

let test_sim_more_reps_scale_linearly () =
  let h = Apps.Harness.bitonic in
  let r4, _ = run_app h (Aiesim.Deploy.baseline (h.Apps.Harness.graph ())) 4 in
  let r16, _ = run_app h (Aiesim.Deploy.baseline (h.Apps.Harness.graph ())) 16 in
  let ratio = r16.Aiesim.Sim.total_cycles /. r4.Aiesim.Sim.total_cycles in
  Alcotest.(check bool) (Printf.sprintf "4x reps => ~4x cycles (got %.2f)" ratio) true
    (ratio > 3.0 && ratio < 5.0)

let () =
  Alcotest.run "aiesim"
    [
      ( "array-model",
        [
          Alcotest.test_case "auto placement" `Quick test_array_auto_placement;
          Alcotest.test_case "full array" `Quick test_array_full;
          Alcotest.test_case "pinning conflicts" `Quick test_array_pinning_conflicts;
          Alcotest.test_case "hops & latency" `Quick test_array_hops;
        ] );
      ( "vliw",
        [
          Alcotest.test_case "packing" `Quick test_vliw_packing;
          Alcotest.test_case "pipelined loops" `Quick test_vliw_loop;
          Alcotest.test_case "load beats" `Quick test_vliw_load_beats;
        ] );
      ( "segments",
        [
          Alcotest.test_case "straight line" `Quick test_segments_straightline;
          Alcotest.test_case "thunk cost" `Quick test_segments_thunk_cost;
          Alcotest.test_case "window coalescing" `Quick test_segments_window_coalescing;
          Alcotest.test_case "pipelined loop" `Quick test_segments_pipelined_loop;
          Alcotest.test_case "aborted loop not scaled" `Quick test_segments_aborted_loop_not_scaled;
          Alcotest.test_case "unbalanced markers" `Quick test_segments_unbalanced_loop;
        ] );
      ( "deploy",
        [
          Alcotest.test_case "places kernels" `Quick test_deploy_places_all_kernels;
          Alcotest.test_case "rejects foreign realms" `Quick test_deploy_rejects_foreign_realms;
        ] );
      ( "sim",
        [
          Alcotest.test_case "outputs match cgsim" `Quick test_sim_outputs_match_cgsim;
          Alcotest.test_case "thunks never speed up" `Quick test_sim_thunk_never_faster;
          Alcotest.test_case "window kernel parity" `Quick test_sim_window_kernel_parity;
          Alcotest.test_case "stream kernels pay" `Quick test_sim_stream_kernels_pay;
          Alcotest.test_case "blocks counted" `Quick test_sim_blocks_counted;
          Alcotest.test_case "linear scaling" `Quick test_sim_more_reps_scale_linearly;
          Alcotest.test_case "gmio transport" `Quick test_sim_gmio_transport;
        ] );
    ]

(* Correctness tests for the four evaluation applications, on the cgsim
   runtime and the x86sim thread-per-kernel runtime, plus pure unit tests
   of the vector algorithms against the scalar references. *)

let check_ok what = function
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: %s" what e

(* ------------------------------------------------------------------ *)
(* Pure algorithm units                                               *)
(* ------------------------------------------------------------------ *)

let test_bitonic_network_shape () =
  Alcotest.(check int) "10 stages for 16 lanes" 10 (List.length Apps.Bitonic.stages)

let test_bitonic_sort_vector () =
  let v = [| 5.; 3.; 9.; 1.; 0.; -2.; 8.; 7.; 6.; 4.; 2.; -1.; 11.; 10.; -3.; 12. |] in
  Alcotest.(check (array (float 0.0)))
    "sorted" (Workloads.Reference.sort_f32 v) (Apps.Bitonic.sort_vector v)

let prop_bitonic_sorts_anything =
  QCheck.Test.make ~name:"bitonic network sorts any 16 floats" ~count:300
    QCheck.(array_of_size (QCheck.Gen.return 16) (float_range (-1000.0) 1000.0))
    (fun v ->
      let v = Array.map Cgsim.Value.round_f32 v in
      Apps.Bitonic.sort_vector v = Workloads.Reference.sort_f32 v)

let prop_bilinear_group_matches_scalar =
  QCheck.Test.make ~name:"vector bilinear blend == scalar reference" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let quads = Workloads.Images.random_quads ~seed 16 in
      let vec = Apps.Bilinear.blend_group quads in
      let scalar =
        Array.map
          (fun (q : Workloads.Images.quad) ->
            Workloads.Reference.bilinear_scalar ~p00:q.p00 ~p01:q.p01 ~p10:q.p10 ~p11:q.p11
              ~xf:q.xf ~yf:q.yf)
          quads
      in
      vec = scalar)

let test_bilinear_corners () =
  (* xf = yf = 0 returns p00 in Q8; xf = yf = 32767 lands within one LSB
     of p11 (Q15 fraction cannot express exactly 1.0). *)
  let r = Workloads.Reference.bilinear_scalar ~p00:100 ~p01:0 ~p10:0 ~p11:0 ~xf:0 ~yf:0 in
  Alcotest.(check int) "origin" (100 * 256) r;
  let r =
    Workloads.Reference.bilinear_scalar ~p00:0 ~p01:0 ~p10:0 ~p11:200 ~xf:32767 ~yf:32767
  in
  let ideal = 200 * 256 in
  Alcotest.(check bool) "far corner within 4 LSB Q8" true (abs (r - ideal) < 1024)

let test_farrow_zero_delay_is_pure_delay () =
  (* At d = 0 the cubic Lagrange Farrow filter degenerates to a fixed
     integer delay: coefficient row m=0 is the unit tap at position 1 of
     the causal tap window [x[i-3] .. x[i]], i.e. y[i] = x[i-2]. *)
  let x = Workloads.Signals.random_i16 ~seed:3 256 in
  let x = Array.map (fun v -> v / 4) x in
  let y = Workloads.Reference.farrow_scalar ~d_q15:0 x in
  for i = 2 to 255 do
    Alcotest.(check int) (Printf.sprintf "y[%d] = x[%d]" i (i - 2)) x.(i - 2) y.(i)
  done

let test_iir_matrix_matches_recurrence () =
  (* One group computed through the coefficient matrix must equal eight
     steps of the direct recurrence (up to f32 rounding). *)
  let s = Workloads.Reference.design_lowpass ~cutoff:0.15 ~q:0.9 in
  let m = Apps.Iir.section_matrix s in
  let rng = Workloads.Prng.create ~seed:5 in
  let u = Array.init 12 (fun _ -> Workloads.Prng.float_range rng ~lo:(-1.0) ~hi:1.0) in
  (* matrix path *)
  let y_mat = Array.make 8 0.0 in
  Array.iteri
    (fun j col -> Array.iteri (fun k c -> y_mat.(k) <- y_mat.(k) +. (u.(j) *. c)) col)
    m;
  (* direct recurrence *)
  let y1 = ref u.(0) and y2 = ref u.(1) and x1 = ref u.(2) and x2 = ref u.(3) in
  let y_dir =
    Array.init 8 (fun k ->
        let xk = u.(4 + k) in
        let yk =
          (s.b0 *. xk) +. (s.b1 *. !x1) +. (s.b2 *. !x2) -. (s.a1 *. !y1) -. (s.a2 *. !y2)
        in
        x2 := !x1;
        x1 := xk;
        y2 := !y1;
        y1 := yk;
        yk)
  in
  Array.iteri
    (fun k e ->
      if Float.abs (y_mat.(k) -. e) > 1e-5 then
        Alcotest.failf "lane %d: matrix %g vs direct %g" k y_mat.(k) e)
    y_dir

let test_iir_sections_stable () =
  Array.iter
    (fun (s : Workloads.Reference.biquad) ->
      (* Stability: poles inside the unit circle <=> |a2| < 1 and
         |a1| < 1 + a2. *)
      Alcotest.(check bool) "a2" true (Float.abs s.a2 < 1.0);
      Alcotest.(check bool) "a1" true (Float.abs s.a1 < 1.0 +. s.a2))
    Workloads.Reference.iir_sections

let test_iir_dc_gain () =
  (* Low-pass cascade: DC gain of each section is 1. *)
  Array.iter
    (fun (s : Workloads.Reference.biquad) ->
      let g = (s.b0 +. s.b1 +. s.b2) /. (1.0 +. s.a1 +. s.a2) in
      if Float.abs (g -. 1.0) > 1e-9 then Alcotest.failf "dc gain %g" g)
    Workloads.Reference.iir_sections

(* ------------------------------------------------------------------ *)
(* End-to-end on the cgsim runtime                                    *)
(* ------------------------------------------------------------------ *)

let cgsim_case (h : Apps.Harness.t) reps () =
  check_ok h.Apps.Harness.name (Apps.Harness.run_cgsim h ~reps)

(* ------------------------------------------------------------------ *)
(* End-to-end on the x86sim runtime                                   *)
(* ------------------------------------------------------------------ *)

let x86sim_case (h : Apps.Harness.t) reps () =
  let g = h.Apps.Harness.graph () in
  let sinks, contents = h.Apps.Harness.make_sinks () in
  let _stats = X86sim.Sim.run_exn g ~sources:(h.Apps.Harness.sources ~reps) ~sinks in
  check_ok (h.Apps.Harness.name ^ " (x86sim)") (h.Apps.Harness.check ~reps (contents ()))

(* x86sim must produce bit-identical outputs to cgsim. *)
let test_x86sim_matches_cgsim () =
  List.iter
    (fun (h : Apps.Harness.t) ->
      let reps = 2 in
      let run_with exec =
        let g = h.Apps.Harness.graph () in
        let sinks, contents = h.Apps.Harness.make_sinks () in
        exec g (h.Apps.Harness.sources ~reps) sinks;
        contents ()
      in
      let a =
        run_with (fun g sources sinks -> ignore (Cgsim.Runtime.execute_exn g ~sources ~sinks))
      in
      let b = run_with (fun g sources sinks -> ignore (X86sim.Sim.run_exn g ~sources ~sinks)) in
      if not (List.for_all2 Cgsim.Value.equal a b) then
        Alcotest.failf "%s: cgsim and x86sim outputs differ" h.Apps.Harness.name)
    Apps.Harness.all

(* The block fast path and the per-element fallback must be
   indistinguishable from outside: bit-identical sink contents for
   every app. *)
let test_block_io_equivalence () =
  List.iter
    (fun (h : Apps.Harness.t) ->
      let reps = 2 in
      let run_with ~block_io =
        let g = h.Apps.Harness.graph () in
        let sinks, contents = h.Apps.Harness.make_sinks () in
        ignore
          (Cgsim.Runtime.execute_exn
             ~config:Cgsim.Run_config.(with_block_io block_io default)
             g ~sources:(h.Apps.Harness.sources ~reps) ~sinks);
        contents ()
      in
      let blocked = run_with ~block_io:true in
      let element = run_with ~block_io:false in
      if List.length blocked <> List.length element then
        Alcotest.failf "%s: block and element paths differ in length" h.Apps.Harness.name;
      if not (List.for_all2 Cgsim.Value.equal blocked element) then
        Alcotest.failf "%s: block and element paths differ" h.Apps.Harness.name)
    Apps.Harness.all

(* Same bar for the SPSC fast path: sealed 1:1 edges and the forced
   broadcast path must give bit-identical sink contents for every app. *)
let test_spsc_equivalence () =
  List.iter
    (fun (h : Apps.Harness.t) ->
      let reps = 2 in
      let run_with ~spsc =
        let g = h.Apps.Harness.graph () in
        let sinks, contents = h.Apps.Harness.make_sinks () in
        ignore
          (Cgsim.Runtime.execute_exn
             ~config:Cgsim.Run_config.(with_spsc spsc default)
             g ~sources:(h.Apps.Harness.sources ~reps) ~sinks);
        contents ()
      in
      let fast = run_with ~spsc:true in
      let slow = run_with ~spsc:false in
      if List.length fast <> List.length slow then
        Alcotest.failf "%s: spsc and mpmc paths differ in length" h.Apps.Harness.name;
      if not (List.for_all2 Cgsim.Value.equal fast slow) then
        Alcotest.failf "%s: spsc and mpmc paths differ" h.Apps.Harness.name)
    Apps.Harness.all

(* Whole apps served through the pool: every request's output checks
   against the scalar reference, with more requests than domains. *)
let test_pool_serves_apps () =
  List.iter
    (fun (h : Apps.Harness.t) ->
      let reps = 1 and requests = 5 in
      let contents = Array.make requests (fun () -> []) in
      let io r =
        let sinks, c = h.Apps.Harness.make_sinks () in
        contents.(r) <- c;
        h.Apps.Harness.sources ~reps, sinks
      in
      let stats = Cgsim.Pool.run ~domains:2 ~requests ~io (h.Apps.Harness.graph ()) in
      Array.iter
        (fun (res : Cgsim.Pool.request_result) ->
          match res.Cgsim.Pool.outcome with
          | Cgsim.Runtime.Completed _ ->
            check_ok
              (Printf.sprintf "%s req %d (pool)" h.Apps.Harness.name res.Cgsim.Pool.req_id)
              (h.Apps.Harness.check ~reps (contents.(res.Cgsim.Pool.req_id) ()))
          | o ->
            Alcotest.failf "%s req %d: %a" h.Apps.Harness.name res.Cgsim.Pool.req_id
              Cgsim.Runtime.pp_outcome o)
        stats.Cgsim.Pool.results)
    Apps.Harness.all

let () =
  Alcotest.run "apps"
    [
      ( "algorithms",
        [
          Alcotest.test_case "bitonic stage count" `Quick test_bitonic_network_shape;
          Alcotest.test_case "bitonic sorts a vector" `Quick test_bitonic_sort_vector;
          Alcotest.test_case "bilinear corner cases" `Quick test_bilinear_corners;
          Alcotest.test_case "farrow d=0 is a delay" `Quick test_farrow_zero_delay_is_pure_delay;
          Alcotest.test_case "iir matrix == recurrence" `Quick test_iir_matrix_matches_recurrence;
          Alcotest.test_case "iir sections stable" `Quick test_iir_sections_stable;
          Alcotest.test_case "iir dc gain" `Quick test_iir_dc_gain;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_bitonic_sorts_anything; prop_bilinear_group_matches_scalar ] );
      ( "cgsim-end-to-end",
        [
          Alcotest.test_case "bitonic x8" `Quick (cgsim_case Apps.Harness.bitonic 8);
          Alcotest.test_case "farrow x2" `Quick (cgsim_case Apps.Harness.farrow 2);
          Alcotest.test_case "iir x2" `Quick (cgsim_case Apps.Harness.iir 2);
          Alcotest.test_case "bilinear x3" `Quick (cgsim_case Apps.Harness.bilinear 3);
          Alcotest.test_case "block == element path" `Quick test_block_io_equivalence;
          Alcotest.test_case "spsc == mpmc path" `Quick test_spsc_equivalence;
          Alcotest.test_case "pool serves all apps" `Quick test_pool_serves_apps;
        ] );
      ( "x86sim-end-to-end",
        [
          Alcotest.test_case "bitonic x8" `Quick (x86sim_case Apps.Harness.bitonic 8);
          Alcotest.test_case "farrow x2" `Quick (x86sim_case Apps.Harness.farrow 2);
          Alcotest.test_case "iir x2" `Quick (x86sim_case Apps.Harness.iir 2);
          Alcotest.test_case "bilinear x3" `Quick (x86sim_case Apps.Harness.bilinear 3);
          Alcotest.test_case "outputs identical to cgsim" `Quick test_x86sim_matches_cgsim;
        ] );
    ]

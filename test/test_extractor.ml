(* Tests for the graph extractor: partitioning, kernel rewriting,
   co-extraction, code generation, and the end-to-end extraction of the
   four evaluation apps from their CGC sources. *)

let contains needle hay =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let cgc_dir =
  (* Tests run from the build sandbox; sources live in the repo. *)
  let rec find dir =
    let candidate = Filename.concat dir "examples/cgc" in
    if Sys.file_exists candidate then candidate
    else begin
      let parent = Filename.dirname dir in
      if String.equal parent dir then failwith "cannot locate examples/cgc"
      else find parent
    end
  in
  find (Sys.getcwd ())

let load_app name = Filename.concat cgc_dir (name ^ ".cgc")

(* ------------------------------------------------------------------ *)
(* Partitioning                                                       *)
(* ------------------------------------------------------------------ *)

(* A mixed-realm source: host kernel (noextract) feeding an AIE kernel. *)
let mixed_source =
  {|#include "cgsim.hpp"

COMPUTE_KERNEL(noextract, mx_host_prep, KernelReadPort<float> in, KernelWritePort<float> out) {
    while (true) { co_await out.put(co_await in.get()); }
};

COMPUTE_KERNEL(aie, mx_aie_scale, KernelReadPort<float> in, KernelWritePort<float> out) {
    while (true) { co_await out.put(co_await in.get()); }
};

[[extract_compute_graph]]
constexpr auto mx_graph = make_compute_graph_v<[](IoConnector<float> a) {
    IoConnector<float> staged, result;
    mx_host_prep(a, staged);
    mx_aie_scale(staged, result);
    return std::make_tuple(result);
}>;|}

let mixed_graph () =
  let env = Cgc.Driver.analyze_string ~file:"mixed.cgc" mixed_source in
  match Cgc.Sema.graphs env with
  | [ g ] -> env, Cgc.Consteval.eval_graph env g
  | _ -> Alcotest.fail "expected one graph"

let test_partition_classify () =
  let _, g = mixed_graph () in
  let classes = Extractor.Partition.classify g in
  (* net0: global input; net1: host->aie (inter); net2: global output *)
  Alcotest.(check bool) "net0 global" true
    (Extractor.Partition.equal_port_class classes.(0) Extractor.Partition.Global);
  Alcotest.(check bool) "net1 inter-realm" true
    (Extractor.Partition.equal_port_class classes.(1) Extractor.Partition.Inter_realm);
  Alcotest.(check bool) "net2 global" true
    (Extractor.Partition.equal_port_class classes.(2) Extractor.Partition.Global)

let test_partition_intra () =
  let env = Cgc.Driver.analyze_string ~file:"intra.cgc"
    {|#include "cgsim.hpp"
COMPUTE_KERNEL(aie, ia_a, KernelReadPort<float> in, KernelWritePort<float> out) {
    while (true) { co_await out.put(co_await in.get()); }
};
constexpr auto ia_graph = make_compute_graph_v<[](IoConnector<float> a) {
    IoConnector<float> m, z;
    ia_a(a, m);
    ia_a(m, z);
    return std::make_tuple(z);
}>;|}
  in
  let g = Cgc.Consteval.eval_graph env (List.hd (Cgc.Sema.graphs env)) in
  let classes = Extractor.Partition.classify g in
  Alcotest.(check bool) "middle net is intra-aie" true
    (Extractor.Partition.equal_port_class classes.(1)
       (Extractor.Partition.Intra_realm Cgsim.Kernel.Aie))

let test_partition_subgraph () =
  let _, g = mixed_graph () in
  let sub = Extractor.Partition.subgraph g Cgsim.Kernel.Aie in
  Alcotest.(check int) "one aie kernel" 1 (Array.length sub.Cgsim.Serialized.kernels);
  Alcotest.(check int) "two nets" 2 (Array.length sub.Cgsim.Serialized.nets);
  (* The inter-realm net becomes the subgraph's external input. *)
  Alcotest.(check int) "one input" 1 (Array.length sub.Cgsim.Serialized.input_order);
  Alcotest.(check int) "one output" 1 (Array.length sub.Cgsim.Serialized.output_order);
  match Cgsim.Serialized.validate_diags sub with
  | [] -> ()
  | diags ->
    Alcotest.failf "subgraph invalid: %s"
      (String.concat "; " (List.map Cgsim.Diagnostic.render diags))

let test_partition_missing_realm () =
  let _, g = mixed_graph () in
  match Extractor.Partition.subgraph g Cgsim.Kernel.Pl with
  | exception Extractor.Partition.Partition_error _ -> ()
  | _ -> Alcotest.fail "empty realm must be rejected"

(* ------------------------------------------------------------------ *)
(* Kernel rewriting                                                   *)
(* ------------------------------------------------------------------ *)

let adder_env () =
  Cgc.Driver.analyze_string ~file:"adder.cgc"
    {|#include "cgsim.hpp"
static float scale(float x) { return x * 2.0f; }
COMPUTE_KERNEL(aie, rw_adder, KernelReadPort<float> in1, KernelReadPort<float> in2, KernelWritePort<float> out) {
    while (true) {
        const float val = (co_await in1.get()) + (co_await in2.get());
        co_await out.put(scale(val));
    }
};
[[extract_compute_graph]]
constexpr auto rw_graph = make_compute_graph_v<[](IoConnector<float> a, IoConnector<float> b) {
    IoConnector<float> c;
    rw_adder(a, b, c);
    return std::make_tuple(c);
}>;|}

let test_rewrite_forward_decl () =
  let env = adder_env () in
  let k = List.hd (Cgc.Sema.kernels env) in
  Alcotest.(check string) "decl"
    "void rw_adder(KernelReadPort<float> in1, KernelReadPort<float> in2, KernelWritePort<float> \
     out);"
    (Extractor.Kernel_rewrite.forward_decl env k)

let test_rewrite_definition () =
  let env = adder_env () in
  let k = List.hd (Cgc.Sema.kernels env) in
  let tu = Option.get (Cgc.Sema.defining_tu env "rw_adder") in
  let text = Extractor.Kernel_rewrite.definition env ~source:tu.Cgc.Ast.tu_source k in
  Alcotest.(check bool) "plain function header" true (contains "void rw_adder(" text);
  Alcotest.(check bool) "no macro left" false (contains "COMPUTE_KERNEL" text);
  Alcotest.(check bool) "no co_await left" false (contains "co_await" text);
  Alcotest.(check bool) "synchronous calls remain" true (contains "in1.get()" text);
  Alcotest.(check bool) "body kept" true (contains "scale(val)" text)

let test_rewrite_thunk () =
  let env = adder_env () in
  let k = List.hd (Cgc.Sema.kernels env) in
  let thunk = Extractor.Kernel_rewrite.aie_thunk env k in
  Alcotest.(check bool) "entry point" true (contains "void rw_adder_aie(" thunk);
  Alcotest.(check bool) "native stream params" true (contains "input_stream<float> *in1_s" thunk);
  Alcotest.(check bool) "adapter objects" true (contains "KernelReadPort<float> in1{in1_s};" thunk);
  Alcotest.(check bool) "calls the kernel" true (contains "rw_adder(in1, in2, out);" thunk)

let test_rewrite_window_thunk () =
  let env =
    Cgc.Driver.analyze_string ~file:"w.cgc"
      {|#include "cgsim.hpp"
COMPUTE_KERNEL(aie, w_k, KernelWindowReadPort<float, 8192> in, KernelRtpPort<int16_t> d, KernelWindowWritePort<float, 8192> out) {
    while (true) { co_await out.put(co_await in.get()); }
};
[[extract_compute_graph]]
constexpr auto w_graph = make_compute_graph_v<[](IoConnector<float> a, IoConnector<int16_t> d) {
    IoConnector<float> z;
    w_k(a, d, z);
    return std::make_tuple(z);
}>;|}
  in
  let k = List.hd (Cgc.Sema.kernels env) in
  let thunk = Extractor.Kernel_rewrite.aie_thunk env k in
  Alcotest.(check bool) "window param" true (contains "input_window<float> *in_w" thunk);
  Alcotest.(check bool) "rtp param" true (contains "int16_t d_v" thunk);
  Alcotest.(check bool) "window adapter" true
    (contains "KernelWindowReadPort<float, 8192> in{in_w};" thunk)

(* ------------------------------------------------------------------ *)
(* Co-extraction                                                      *)
(* ------------------------------------------------------------------ *)

let test_coextract_deps_and_includes () =
  let env =
    Cgc.Driver.analyze_string ~file:"co.cgc"
      {|#include "cgsim.hpp"
#include <cstdint>
static constexpr int GAIN_SHIFT = 3;
static int apply_gain(int x) { return x << GAIN_SHIFT; }
static int unused_helper(int x) { return x; }
COMPUTE_KERNEL(aie, co_k, KernelReadPort<int32_t> in, KernelWritePort<int32_t> out) {
    while (true) { co_await out.put(apply_gain(co_await in.get())); }
};
[[extract_compute_graph]]
constexpr auto co_graph = make_compute_graph_v<[](IoConnector<int32_t> a) {
    IoConnector<int32_t> z;
    co_k(a, z);
    return std::make_tuple(z);
}>;|}
  in
  let decls = Extractor.Coextract.support_decls env [ "co_k" ] in
  Alcotest.(check int) "two support decls" 2 (List.length decls);
  Alcotest.(check bool) "constant first" true (contains "GAIN_SHIFT = 3" (List.nth decls 0));
  Alcotest.(check bool) "helper second" true (contains "apply_gain" (List.nth decls 1));
  Alcotest.(check bool) "unused helper excluded" false
    (List.exists (contains "unused_helper") decls);
  let incs =
    Extractor.Coextract.includes_for env
      ~blacklist:Extractor.Coextract.aie_header_blacklist
      ~runtime_header:Extractor.Coextract.aie_runtime_header
  in
  Alcotest.(check bool) "runtime header first" true
    (String.equal (List.hd incs) "#include \"cgsim_aie_rt.hpp\"");
  Alcotest.(check bool) "cstdint kept" true (List.mem "#include <cstdint>" incs);
  Alcotest.(check bool) "cgsim.hpp blacklisted" false
    (List.exists (contains "cgsim.hpp") incs)

(* ------------------------------------------------------------------ *)
(* Full extraction of the four evaluation apps                        *)
(* ------------------------------------------------------------------ *)

let extract_app name =
  match Extractor.Project.extract_file (load_app name) with
  | [ p ] -> p
  | _ -> Alcotest.failf "%s: expected exactly one extractable graph" name

let test_extract_project_files () =
  let p = extract_app "bitonic" in
  let paths = List.map (fun f -> f.Extractor.Project.rel_path) p.Extractor.Project.files in
  Alcotest.(check (list string)) "files"
    [ "README.md"; "cgsim_aie_rt.hpp"; "kernel_decls.hpp"; "graph.hpp"; "bitonic_kernel.cc" ]
    paths

let test_extract_graph_hpp_content () =
  let p = extract_app "farrow" in
  let graph_hpp =
    List.find (fun f -> f.Extractor.Project.rel_path = "graph.hpp") p.Extractor.Project.files
  in
  let c = graph_hpp.Extractor.Project.contents in
  Alcotest.(check bool) "adf graph class" true (contains "class farrow_graph : public graph" c);
  Alcotest.(check bool) "kernel create stage1" true
    (contains "kernel::create(farrow_stage1_aie)" c);
  Alcotest.(check bool) "kernel create stage2" true
    (contains "kernel::create(farrow_stage2_aie)" c);
  Alcotest.(check bool) "window connect" true (contains "connect<window<4096>>" c);
  Alcotest.(check bool) "stream connect" true (contains "connect<stream>" c);
  Alcotest.(check bool) "rtp connect" true (contains "connect<parameter>" c);
  Alcotest.(check bool) "plio name attribute used" true (contains "\"farrow_out\"" c)

let test_extract_kernel_cc_content () =
  let p = extract_app "farrow" in
  let cc =
    List.find
      (fun f -> f.Extractor.Project.rel_path = "farrow_stage1.cc")
      p.Extractor.Project.files
  in
  let c = cc.Extractor.Project.contents in
  Alcotest.(check bool) "coefficients co-extracted" true (contains "FARROW_COEFF" c);
  Alcotest.(check bool) "srs helper co-extracted" true (contains "static int srs15" c);
  Alcotest.(check bool) "define co-extracted" true (contains "#define FARROW_SAMPLES 2048" c);
  Alcotest.(check bool) "no co_await" false (contains "co_await" c);
  Alcotest.(check bool) "thunk present" true (contains "void farrow_stage1_aie(" c);
  Alcotest.(check bool) "runtime header" true (contains "cgsim_aie_rt.hpp" c);
  Alcotest.(check bool) "api header excluded" false (contains "#include \"cgsim.hpp\"" c)

let test_extract_topology_matches_ocaml_twin () =
  (* The consteval'd CGC graphs must be topologically identical to the
     OCaml-built graphs used by the simulators. *)
  List.iter
    (fun (cgc_name, builder_graph) ->
      let p = extract_app cgc_name in
      Alcotest.(check bool)
        (cgc_name ^ " topology matches")
        true
        (Cgsim.Serialized.equal_topology p.Extractor.Project.serialized (builder_graph ())))
    [
      "bitonic", Apps.Bitonic.graph;
      "farrow", Apps.Farrow.graph;
      "iir", Apps.Iir.graph;
      "bilinear", Apps.Bilinear.graph;
    ]

let test_extract_deploy_runs_functionally () =
  (* Extracted deploys execute on aiesim (thunk cost model) and produce
     the exact outputs of the cgsim prototype. *)
  let h = Apps.Harness.bitonic in
  let p = extract_app "bitonic" in
  let deploy = Extractor.Project.deploy p in
  let sinks, contents = h.Apps.Harness.make_sinks () in
  let _report = Aiesim.Sim.run deploy ~sources:(h.Apps.Harness.sources ~reps:4) ~sinks in
  match h.Apps.Harness.check ~reps:4 (contents ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "extracted bitonic deploy wrong: %s" e

let test_extract_rejects_no_aie () =
  match
    Extractor.Project.extract_string ~file:"h.cgc"
      {|#include "cgsim.hpp"
COMPUTE_KERNEL(noextract, nx_only, KernelReadPort<float> in, KernelWritePort<float> out) {
    while (true) { co_await out.put(co_await in.get()); }
};
[[extract_compute_graph]]
constexpr auto nx_graph = make_compute_graph_v<[](IoConnector<float> a) {
    IoConnector<float> z;
    nx_only(a, z);
    return std::make_tuple(z);
}>;|}
  with
  | exception Extractor.Project.Extract_error _ -> ()
  | _ -> Alcotest.fail "graph without AIE kernels must be rejected"

let test_extract_attribute_filter () =
  let env =
    Cgc.Driver.analyze_string ~file:"two.cgc"
      {|#include "cgsim.hpp"
COMPUTE_KERNEL(aie, af_k, KernelReadPort<float> in, KernelWritePort<float> out) {
    while (true) { co_await out.put(co_await in.get()); }
};
[[extract_compute_graph]]
constexpr auto af_marked = make_compute_graph_v<[](IoConnector<float> a) {
    IoConnector<float> z;
    af_k(a, z);
    return std::make_tuple(z);
}>;
constexpr auto af_unmarked = make_compute_graph_v<[](IoConnector<float> a) {
    IoConnector<float> z;
    af_k(a, z);
    return std::make_tuple(z);
}>;|}
  in
  Alcotest.(check int) "only marked graph" 1
    (List.length (Extractor.Project.extractable_graphs env));
  Alcotest.(check int) "all graphs" 2
    (List.length (Extractor.Project.extractable_graphs ~all_graphs:true env))

(* ------------------------------------------------------------------ *)
(* Multi-realm extraction (AIE + PL/HLS + host)                       *)
(* ------------------------------------------------------------------ *)

let test_extract_hybrid_partitions () =
  let p = extract_app "hybrid" in
  (match p.Extractor.Project.aie_subgraph with
   | Some sub -> Alcotest.(check int) "one aie kernel" 1 (Array.length sub.Cgsim.Serialized.kernels)
   | None -> Alcotest.fail "hybrid must have an AIE partition");
  (match p.Extractor.Project.pl_subgraph with
   | Some sub -> Alcotest.(check int) "one pl kernel" 1 (Array.length sub.Cgsim.Serialized.kernels)
   | None -> Alcotest.fail "hybrid must have a PL partition");
  Alcotest.(check (list string)) "host kernels" [ "hybrid_monitor" ]
    p.Extractor.Project.host_kernels;
  let paths = List.map (fun f -> f.Extractor.Project.rel_path) p.Extractor.Project.files in
  Alcotest.(check bool) "aie graph file" true (List.mem "graph.hpp" paths);
  Alcotest.(check bool) "pl toplevel" true (List.mem "pl/hybrid_pl.cpp" paths);
  Alcotest.(check bool) "pl kernel" true (List.mem "pl/hybrid_widen.cpp" paths);
  Alcotest.(check bool) "host manifest" true (List.mem "host/MANIFEST" paths)

let test_extract_hls_content () =
  let p = extract_app "hybrid" in
  let file name =
    (List.find (fun f -> f.Extractor.Project.rel_path = name) p.Extractor.Project.files)
      .Extractor.Project.contents
  in
  let top = file "pl/hybrid_pl.cpp" in
  Alcotest.(check bool) "dataflow pragma" true (contains "#pragma HLS DATAFLOW" top);
  Alcotest.(check bool) "toplevel function" true (contains "void hybrid_pl(" top);
  Alcotest.(check bool) "wrapper instantiated" true (contains "hybrid_widen_hls(" top);
  let cc = file "pl/hybrid_widen.cpp" in
  Alcotest.(check bool) "axis interface" true (contains "#pragma HLS INTERFACE axis" cc);
  Alcotest.(check bool) "helper co-extracted" true (contains "saturate24" cc);
  Alcotest.(check bool) "constant co-extracted" true (contains "HYBRID_GAIN" cc);
  Alcotest.(check bool) "no co_await" false (contains "co_await" cc);
  let decls = file "pl/pl_kernels.hpp" in
  Alcotest.(check bool) "hls_stream include" true (contains "#include <hls_stream.h>" decls)

let test_extract_hybrid_inter_realm_nets () =
  let p = extract_app "hybrid" in
  let classes = p.Extractor.Project.port_classes in
  (* samples->widen = global; widen->average = inter (pl->aie);
     average->monitor = inter (aie->host); monitor->out = global *)
  Alcotest.(check bool) "pl->aie inter" true
    (Extractor.Partition.equal_port_class classes.(1) Extractor.Partition.Inter_realm);
  Alcotest.(check bool) "aie->host inter" true
    (Extractor.Partition.equal_port_class classes.(2) Extractor.Partition.Inter_realm)

let test_extract_gmio_codegen () =
  let projects =
    Extractor.Project.extract_string ~file:"g.cgc"
      {|#include "cgsim.hpp"
COMPUTE_KERNEL(aie, gx_k, KernelGmioReadPort<int32_t> in, KernelGmioWritePort<int32_t> out) {
    while (true) { co_await out.put(co_await in.get()); }
};
[[extract_compute_graph]]
constexpr auto gx_graph = make_compute_graph_v<[](IoConnector<int32_t> ddr) {
    IoConnector<int32_t> z;
    gx_k(ddr, z);
    return std::make_tuple(z);
}>;|}
  in
  match projects with
  | [ p ] ->
    let graph_hpp =
      (List.find (fun f -> f.Extractor.Project.rel_path = "graph.hpp") p.Extractor.Project.files)
        .Extractor.Project.contents
    in
    Alcotest.(check bool) "input gmio" true (contains "input_gmio::create" graph_hpp);
    Alcotest.(check bool) "output gmio" true (contains "output_gmio::create" graph_hpp);
    let cc =
      (List.find (fun f -> f.Extractor.Project.rel_path = "gx_k.cc") p.Extractor.Project.files)
        .Extractor.Project.contents
    in
    Alcotest.(check bool) "gmio thunk param" true (contains "input_gmio<int32_t> *in_g" cc);
    Alcotest.(check bool) "gmio adapter" true (contains "KernelGmioReadPort<int32_t> in{in_g};" cc)
  | _ -> Alcotest.fail "one project expected"

let test_extract_write_to_disk () =
  let p = extract_app "iir" in
  let dir = Filename.temp_file "cgx" "" in
  Sys.remove dir;
  let written = Extractor.Project.write ~dir p in
  Alcotest.(check int) "five files" 5 (List.length written);
  List.iter
    (fun path -> Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path))
    written;
  (* Generated headers re-lex cleanly (no stray tokens); README.md is
     markdown, not C++, so it is exempt. *)
  List.iter
    (fun path ->
      if Filename.basename path <> "README.md" then begin
        let contents = In_channel.with_open_bin path In_channel.input_all in
        ignore (Cgc.Lexer.tokenize ~file:path contents)
      end)
    written

let () =
  Alcotest.run "extractor"
    [
      ( "partition",
        [
          Alcotest.test_case "classify" `Quick test_partition_classify;
          Alcotest.test_case "intra-realm" `Quick test_partition_intra;
          Alcotest.test_case "aie subgraph" `Quick test_partition_subgraph;
          Alcotest.test_case "missing realm" `Quick test_partition_missing_realm;
        ] );
      ( "kernel-rewrite",
        [
          Alcotest.test_case "forward decl" `Quick test_rewrite_forward_decl;
          Alcotest.test_case "definition" `Quick test_rewrite_definition;
          Alcotest.test_case "stream thunk" `Quick test_rewrite_thunk;
          Alcotest.test_case "window/rtp thunk" `Quick test_rewrite_window_thunk;
        ] );
      ( "coextract",
        [ Alcotest.test_case "deps and includes" `Quick test_coextract_deps_and_includes ] );
      ( "project",
        [
          Alcotest.test_case "file set" `Quick test_extract_project_files;
          Alcotest.test_case "graph.hpp content" `Quick test_extract_graph_hpp_content;
          Alcotest.test_case "kernel .cc content" `Quick test_extract_kernel_cc_content;
          Alcotest.test_case "topology matches OCaml twins" `Quick
            test_extract_topology_matches_ocaml_twin;
          Alcotest.test_case "extracted deploy runs" `Quick test_extract_deploy_runs_functionally;
          Alcotest.test_case "rejects AIE-free graphs" `Quick test_extract_rejects_no_aie;
          Alcotest.test_case "attribute filter" `Quick test_extract_attribute_filter;
          Alcotest.test_case "hybrid partitions" `Quick test_extract_hybrid_partitions;
          Alcotest.test_case "hls content" `Quick test_extract_hls_content;
          Alcotest.test_case "inter-realm nets" `Quick test_extract_hybrid_inter_realm_nets;
          Alcotest.test_case "gmio codegen" `Quick test_extract_gmio_codegen;
          Alcotest.test_case "write to disk" `Quick test_extract_write_to_disk;
        ] );
    ]

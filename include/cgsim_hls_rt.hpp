// cgsim_hls_rt.hpp — PL-realm (Vitis HLS) runtime adapters for extracted
// kernels: the same generic port types, implemented over hls::stream.
#pragma once
#include <hls_stream.h>

template <typename T> struct KernelReadPort {
    hls::stream<T> &s;
    explicit KernelReadPort(hls::stream<T> &s) : s(s) {}
    inline T get() {
#pragma HLS INLINE
        return s.read();
    }
};

template <typename T> struct KernelWritePort {
    hls::stream<T> &s;
    explicit KernelWritePort(hls::stream<T> &s) : s(s) {}
    inline void put(T v) {
#pragma HLS INLINE
        s.write(v);
    }
};

template <typename T, int BYTES> struct KernelWindowReadPort {
    hls::stream<T> &s;
    explicit KernelWindowReadPort(hls::stream<T> &s) : s(s) {}
    inline T get() { return s.read(); }
};

template <typename T, int BYTES> struct KernelWindowWritePort {
    hls::stream<T> &s;
    explicit KernelWindowWritePort(hls::stream<T> &s) : s(s) {}
    inline void put(T v) { s.write(v); }
};

template <typename T> struct KernelRtpPort {
    T v;
    explicit KernelRtpPort(T v) : v(v) {}
    inline T get() { return v; }
};

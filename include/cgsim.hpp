// cgsim.hpp — prototype-side API header for cgsim compute graphs (CGC).
//
// This is the header that prototype sources #include.  It is on the
// extractor's blacklist (Section 4.6): it never reaches hardware builds,
// where the realm runtime headers (cgsim_aie_rt.hpp / cgsim_hls_rt.hpp)
// provide native implementations of the same port types instead.
//
// In the OCaml reproduction the simulator is the OCaml library `cgsim`,
// so this header only documents the prototype-side contract; the C++
// definitions below describe the shapes the CGC front-end understands.
#pragma once
#include <cstdint>
#include <tuple>

// Fixed-lane vector types (AMD spelling).
struct v2int16 { int16_t lane[2]; int16_t &operator[](int i) { return lane[i]; } };
struct v4int16 { int16_t lane[4]; int16_t &operator[](int i) { return lane[i]; } };
struct v8int32 { int32_t lane[8]; int32_t &operator[](int i) { return lane[i]; } };
struct v16float { float lane[16]; float &operator[](int i) { return lane[i]; } };

// Kernel-side stream ports.  In the prototype these wrap the simulator's
// MPMC broadcast queues; every get()/put() is an awaitable suspension
// point of the kernel coroutine.
template <typename T> struct KernelReadPort {
    // awaitable get(): suspends until an element is available
    T get();
};
template <typename T> struct KernelWritePort {
    // awaitable put(): suspends while the queue is full
    void put(T value);
};

// Window (ping-pong buffer) ports: the kernel is invoked per BYTES-sized
// block; element access inside the window is local-memory traffic.
template <typename T, int BYTES> struct KernelWindowReadPort {
    T get();
};
template <typename T, int BYTES> struct KernelWindowWritePort {
    void put(T value);
};

// Runtime parameter: one scalar per invocation.
template <typename T> struct KernelRtpPort {
    T get();
};

// Global-memory I/O: DMA to DDR through the NoC (deep buffering, high
// bandwidth, hundreds of cycles of access latency).
template <typename T> struct KernelGmioReadPort {
    T get();
};
template <typename T> struct KernelGmioWritePort {
    void put(T value);
};

// Graph-construction connector (Section 3.4): created inside
// make_compute_graph_v lambdas; connecting several writers creates a
// stream merge, several readers a broadcast.
template <typename T> struct IoConnector {};

// Attach extractor-facing attributes (PLIO names, widths, buffering
// hints) to a connection.  No effect on simulation.
struct attr_kv { const char *key; long value_or_string; };
template <typename T, typename Pairs>
void attach_attributes(IoConnector<T> conn, Pairs pairs);

// Kernel definition macro: realm, kernel name, then the port parameter
// list.  The body follows as a compound statement.
#define COMPUTE_KERNEL(realm, name, ...) /* kernel 'name' in 'realm' */ \
    void name(__VA_ARGS__)

// Compile-time graph construction entry point: the lambda executes at
// compile time (constexpr) and its connector flow defines the graph.
template <auto lambda> constexpr auto make_compute_graph_v = lambda;

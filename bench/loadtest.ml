(* Open-loop load test of Cgsim.Pool.

   The serve benchmark is closed-loop: domains pull the next request the
   moment they finish one, so the measured rate is whatever the pool can
   sustain and queueing delay is invisible by construction.  Real
   clients are open-loop: requests arrive on their own schedule whether
   or not the server kept up, and latency is measured from the scheduled
   arrival — the coordinated-omission-free number.

   This bench sweeps offered arrival rates.  For each rate step it draws
   seeded Poisson arrivals (exponential inter-arrival times, xorshift64*
   uniforms — deterministic per rate), runs the pool in open-loop mode
   (Pool.run ~arrivals), and reports p50/p99/p999/max latency over the
   successful requests plus the error rate, from the pool's HDR
   histograms.  Under [--chaos] a seeded transient-fault plan with retry
   supervision rides along, so the tail latencies include retry storms —
   the production shape.

   With [~remote:addr] the same sweep drives a running `cgx serve`
   daemon through Serve.Client instead of an in-process pool: a fresh
   pipelined connection per rate step, a sender pacing the Poisson
   schedule with [send_run], and a receiver domain timing each reply
   against its scheduled arrival — so the measured path includes the
   wire codec, the socket, and the server's queueing.  Chaos injection
   is in-process only and rejected with [--remote].

   [run ~json:file] writes schema "cgsim-bench-load/2"; check-json
   validates it in CI.  [~metrics:file] dumps the last step's
   Prometheus exposition (Pool.metrics_exposition in-process, the
   daemon's merged /metrics under [--remote]); check-prom validates
   that. *)

let default_rates = [ 50.0; 200.0; 800.0 ]

let smoke_rates = [ 200.0 ]

let domains = 2

(* Small requests: at the default rates a request must be far cheaper
   than the inter-arrival gap for the sweep to show the knee rather than
   saturating immediately. *)
let load_reps ~smoke (t : Apps.Harness.t) =
  max 1 (t.Apps.Harness.table2_reps / if smoke then 512 else 128)

(* xorshift64* uniforms, same generator family as the pool's backoff
   jitter; one independent stream per rate step. *)
let uniform_stream seed =
  let st = ref (Int64.of_int (if seed = 0 then 0x9E3779B9 else seed * 0x9E3779B9 + 1)) in
  fun () ->
    let x = !st in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    st := x;
    let bits = Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 11) in
    float_of_int (bits land 0xFFFFF) /. float_of_int 0x100000

(* Poisson process at [rate_rps]: cumulative sums of exponential
   inter-arrival gaps, as ns offsets from pool start. *)
let poisson_arrivals ~seed ~rate_rps ~requests =
  let next = uniform_stream seed in
  let a = Array.make requests 0.0 in
  let t = ref 0.0 in
  for i = 0 to requests - 1 do
    let u = Float.max 1e-12 (next ()) in
    t := !t +. (-.Float.log u /. rate_rps *. 1e9);
    a.(i) <- !t
  done;
  a

type step = {
  rate_rps : float;
  requests : int;
  completed : int;
  errors : int;  (* failed, deadline, cancelled or shed *)
  wall_ns : float;
  achieved_rps : float;  (* completions per second of wall time *)
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_ns : float;
  mean_ns : float;
  retries : int;
  breaker_tripped : bool;
}

let run_step ~chaos ~smoke ~requests ~seed (t : Apps.Harness.t) g rate_rps =
  let reps = load_reps ~smoke t in
  let faults =
    if not chaos then None
    else
      (* Transient raises: each injected failure is absorbed by a retry,
         which is exactly what stretches the latency tail. *)
      let fires = max 1 (requests / 4) in
      Some (Cgsim.Faults.plan ~seed [ Cgsim.Faults.raise_on ~kernel:"*" ~after:2 ~fires () ])
  in
  let config =
    let open Cgsim.Run_config in
    let c = default |> with_seed seed in
    match faults with
    | None -> c
    | Some plan ->
      c
      |> with_deadline_ms (if smoke then 100. else 250.)
      |> with_retries 2
      |> with_backoff ~base_ns:1e5 ~cap_ns:1e7
      |> with_faults plan
  in
  let contents = Array.make requests (fun () -> []) in
  let io r =
    let sinks, c = t.Apps.Harness.make_sinks () in
    contents.(r) <- c;
    t.Apps.Harness.sources ~reps, sinks
  in
  let arrivals = poisson_arrivals ~seed ~rate_rps ~requests in
  let stats = Cgsim.Pool.run ~config ~arrivals ~domains ~requests ~io g in
  (* Latency quantiles over successful requests only (errors have no
     meaningful completion latency); recorded into a fresh HDR histogram
     so the quantiles carry its bounded relative error. *)
  let hdr = Obs.Hdr.create () in
  let completed = ref 0 in
  let errors = ref 0 in
  Array.iter
    (fun (res : Cgsim.Pool.request_result) ->
      match res.Cgsim.Pool.outcome with
      | Cgsim.Runtime.Completed _ when not res.Cgsim.Pool.shed ->
        (match t.Apps.Harness.check ~reps (contents.(res.Cgsim.Pool.req_id) ()) with
         | Ok () ->
           incr completed;
           Obs.Hdr.record hdr res.Cgsim.Pool.req_latency_ns
         | Error _ -> incr errors)
      | _ -> incr errors)
    stats.Cgsim.Pool.results;
  ( {
      rate_rps;
      requests;
      completed = !completed;
      errors = !errors;
      wall_ns = stats.Cgsim.Pool.wall_ns;
      achieved_rps = float_of_int !completed /. (stats.Cgsim.Pool.wall_ns /. 1e9);
      p50_ns = Obs.Hdr.quantile hdr 0.5;
      p99_ns = Obs.Hdr.quantile hdr 0.99;
      p999_ns = Obs.Hdr.quantile hdr 0.999;
      max_ns = (if Obs.Hdr.count hdr = 0 then 0.0 else Obs.Hdr.max_value hdr);
      mean_ns = Obs.Hdr.mean hdr;
      retries = stats.Cgsim.Pool.retries;
      breaker_tripped = stats.Cgsim.Pool.breaker_tripped;
    },
    stats )

let drain_source src =
  let pull = Cgsim.Io.source_pull src in
  let rec go acc =
    match pull () with
    | Some v -> go (v :: acc)
    | None -> List.rev acc
  in
  go []

(* One rate step against a live daemon.  The client assigns ids from 0
   per connection, so with a fresh connection per step the reply id IS
   the request index — arrivals.(id) needs no shared map.  The sender
   (this domain) paces the Poisson schedule; the receiver domain clocks
   each reply against its scheduled arrival, the same
   coordinated-omission-free convention as the in-process path. *)
let run_step_remote ~smoke ~requests ~seed (t : Apps.Harness.t) addr rate_rps =
  let reps = load_reps ~smoke t in
  let inputs = List.map drain_source (t.Apps.Harness.sources ~reps) in
  let arrivals = poisson_arrivals ~seed ~rate_rps ~requests in
  let client = Serve.Client.connect ~retries:10 addr in
  let t0 = Obs.Clock.now_ns () in
  let receiver =
    Domain.spawn (fun () ->
        let hdr = Obs.Hdr.create () in
        let completed = ref 0 in
        let errors = ref 0 in
        let retries = ref 0 in
        let shed = ref false in
        let last_ns = ref t0 in
        let rec loop remaining =
          if remaining > 0 then
            match Serve.Client.recv client with
            | Error m ->
              (* Transport failure: everything still in flight is lost. *)
              Printf.eprintf "loadtest --remote: %s (%d replies outstanding)\n%!" m remaining;
              errors := !errors + remaining
            | Ok reply ->
              let now = Obs.Clock.now_ns () in
              last_ns := now;
              (match reply.Serve.Wire.p_body with
               | Serve.Wire.Result r ->
                 retries := !retries + max 0 (r.Serve.Wire.rp_attempts - 1);
                 (match r.Serve.Wire.rp_outcome with
                  | Serve.Wire.Completed outputs ->
                    let primary = match outputs with o :: _ -> o | [] -> [] in
                    let id = reply.Serve.Wire.p_id in
                    (match t.Apps.Harness.check ~reps primary with
                     | Ok () when id >= 0 && id < requests ->
                       incr completed;
                       Obs.Hdr.record hdr (now -. (t0 +. arrivals.(id)))
                     | Ok () | Error _ -> incr errors)
                  | Serve.Wire.Shed ->
                    shed := true;
                    incr errors
                  | Serve.Wire.Deadline _ | Serve.Wire.Cancelled | Serve.Wire.Failed _ ->
                    incr errors)
               | Serve.Wire.Error (_, _) | Serve.Wire.Metrics_text _ | Serve.Wire.Pong ->
                 incr errors);
              loop (remaining - 1)
        in
        loop requests;
        hdr, !completed, !errors, !retries, !shed, !last_ns)
  in
  for i = 0 to requests - 1 do
    let target = t0 +. arrivals.(i) in
    let now = Obs.Clock.now_ns () in
    if target > now then Unix.sleepf ((target -. now) /. 1e9);
    ignore (Serve.Client.send_run client ~graph:t.Apps.Harness.name inputs : int)
  done;
  let hdr, completed, errors, retries, shed, last_ns = Domain.join receiver in
  (* All replies are in: the connection is quiet, safe for a blocking
     metrics exchange before it closes. *)
  let exposition =
    match Serve.Client.metrics client with Ok body -> Some body | Error _ -> None
  in
  Serve.Client.close client;
  let wall_ns = Float.max 1.0 (last_ns -. t0) in
  ( {
      rate_rps;
      requests;
      completed;
      errors;
      wall_ns;
      achieved_rps = float_of_int completed /. (wall_ns /. 1e9);
      p50_ns = Obs.Hdr.quantile hdr 0.5;
      p99_ns = Obs.Hdr.quantile hdr 0.99;
      p999_ns = Obs.Hdr.quantile hdr 0.999;
      max_ns = (if Obs.Hdr.count hdr = 0 then 0.0 else Obs.Hdr.max_value hdr);
      mean_ns = Obs.Hdr.mean hdr;
      retries;
      breaker_tripped = shed;
    },
    exposition )

let json_of_step (s : step) =
  Obs.Json.Obj
    [
      "rate_rps", Obs.Json.Num s.rate_rps;
      "requests", Obs.Json.Num (float_of_int s.requests);
      "completed", Obs.Json.Num (float_of_int s.completed);
      "errors", Obs.Json.Num (float_of_int s.errors);
      "error_rate", Obs.Json.Num (float_of_int s.errors /. float_of_int s.requests);
      "wall_ms", Obs.Json.Num (s.wall_ns /. 1e6);
      "achieved_rps", Obs.Json.Num s.achieved_rps;
      "p50_ms", Obs.Json.Num (s.p50_ns /. 1e6);
      "p99_ms", Obs.Json.Num (s.p99_ns /. 1e6);
      "p999_ms", Obs.Json.Num (s.p999_ns /. 1e6);
      "max_ms", Obs.Json.Num (s.max_ns /. 1e6);
      "mean_ms", Obs.Json.Num (s.mean_ns /. 1e6);
      "retries", Obs.Json.Num (float_of_int s.retries);
      "breaker_tripped", Obs.Json.Bool s.breaker_tripped;
    ]

let run ?json ?metrics ?(smoke = false) ?(chaos = false)
    ?(rates = if smoke then smoke_rates else default_rates) ?requests ?remote () =
  (match remote, chaos with
   | Some _, true ->
     Printf.eprintf "loadtest: --chaos is in-process fault injection; it cannot ride --remote\n";
     exit 2
   | _ -> ());
  let remote_addr =
    match remote with
    | None -> None
    | Some spec -> (
      match Serve.Addr.parse spec with
      | Ok a -> Some a
      | Error m ->
        Printf.eprintf "loadtest: %s\n" m;
        exit 2)
  in
  let t = Apps.Harness.bitonic in
  let requests = Option.value requests ~default:(if smoke then 10 else 64) in
  let g = t.Apps.Harness.graph () in
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf
    "\n== Open-loop load test (%s, Poisson arrivals, %d requests/step, %s%s) ==\n%!"
    t.Apps.Harness.name requests
    (match remote with
     | Some addr -> Printf.sprintf "remote %s" addr
     | None -> Printf.sprintf "%d domains" domains)
    (if chaos then ", chaos faults + retries" else "");
  Printf.printf "%9s %6s %6s %6s %10s %9s %9s %9s %9s %8s\n" "rate_rps" "reqs" "ok" "err"
    "achieved" "p50_ms" "p99_ms" "p999_ms" "max_ms" "retries";
  let last_exposition = ref None in
  let steps =
    List.mapi
      (fun i rate ->
        let s =
          match remote_addr with
          | Some addr ->
            let s, exposition = run_step_remote ~smoke ~requests ~seed:(11 + i) t addr rate in
            (match exposition with Some e -> last_exposition := Some e | None -> ());
            s
          | None ->
            let s, stats = run_step ~chaos ~smoke ~requests ~seed:(11 + i) t g rate in
            last_exposition := Some (Cgsim.Pool.metrics_exposition stats);
            s
        in
        Printf.printf "%9.0f %6d %6d %6d %10.1f %9.2f %9.2f %9.2f %9.2f %8d%s\n%!" s.rate_rps
          s.requests s.completed s.errors s.achieved_rps (s.p50_ns /. 1e6) (s.p99_ns /. 1e6)
          (s.p999_ns /. 1e6) (s.max_ns /. 1e6) s.retries
          (if s.breaker_tripped then "  [breaker]" else "");
        s)
      rates
  in
  (match metrics, !last_exposition with
   | Some file, Some exposition ->
     (try
        Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc exposition)
      with Sys_error msg ->
        Printf.eprintf "error: cannot write %s: %s\n" file msg;
        exit 1);
     Printf.printf "wrote Prometheus exposition (last step) to %s\n%!" file
   | Some file, None ->
     Printf.eprintf "error: no exposition collected for %s\n" file;
     exit 1
   | None, _ -> ());
  (match json with
   | None -> ()
   | Some file ->
     let doc =
       Obs.Json.Obj
         [
           "schema", Obs.Json.Str "cgsim-bench-load/2";
           "smoke", Obs.Json.Bool smoke;
           "chaos", Obs.Json.Bool chaos;
           "remote", (match remote with Some a -> Obs.Json.Str a | None -> Obs.Json.Null);
           "warm", Obs.Json.Bool Cgsim.Run_config.default.Cgsim.Run_config.warm;
           "app", Obs.Json.Str t.Apps.Harness.name;
           "domains",
           (match remote with
            | Some _ -> Obs.Json.Null (* server-side; unknown to the client *)
            | None -> Obs.Json.Num (float_of_int domains));
           "host_cores", Obs.Json.Num (float_of_int host_cores);
           "oversubscribed", Obs.Json.Bool (domains > host_cores);
           "requests_per_step", Obs.Json.Num (float_of_int requests);
           "quantile_rel_error", Obs.Json.Num Obs.Hdr.rel_error;
           "steps", Obs.Json.Arr (List.map json_of_step steps);
         ]
     in
     (try
        Out_channel.with_open_bin file (fun oc ->
            Out_channel.output_string oc (Obs.Json.to_string doc))
      with Sys_error msg ->
        Printf.eprintf "error: cannot write %s: %s\n" file msg;
        exit 1);
     Printf.printf "wrote load test JSON to %s\n%!" file);
  (* Guard rails for CI: a load test where nothing completed measured
     nothing; chaos must have actually exercised the retry path. *)
  if List.for_all (fun s -> s.completed = 0) steps then begin
    Printf.eprintf "loadtest: no request completed at any rate\n";
    exit 1
  end;
  if chaos && List.for_all (fun s -> s.retries = 0) steps then begin
    Printf.eprintf "loadtest --chaos: fault plan never forced a retry\n";
    exit 1
  end

(* Benchmark harness entry point.

   Reproduces every quantitative result of the paper's evaluation:
     table1   - Table 1, processing time per input block on aiesim
     table2   - Table 2, wall-clock time of cgsim vs x86sim vs aiesim
     profile  - Section 5.2 kernel-time fraction
     micro    - bechamel micro-benchmarks of framework primitives
     ablation - design-choice sweeps (thunk cost, buffering, placement)

   With no arguments all five run in order.

   profile takes options:
     --trace FILE   run under an obs session and write a Chrome
                    trace-event JSON (Perfetto-loadable)
     --smoke        reduced repetition counts (CI guard for the
                    instrumentation hooks) *)

let usage () =
  print_endline
    "usage: main.exe [table1|table2|table2-quick|profile [--trace FILE] [--smoke]|micro|ablation]...";
  exit 2

type action =
  | Table1
  | Table2
  | Table2_quick
  | Profile of string option * bool  (* trace file, smoke *)
  | Micro
  | Ablation

let parse_actions args =
  let rec go = function
    | [] -> []
    | "table1" :: rest -> Table1 :: go rest
    | "table2" :: rest -> Table2 :: go rest
    | "table2-quick" :: rest -> Table2_quick :: go rest
    | "micro" :: rest -> Micro :: go rest
    | "ablation" :: rest -> Ablation :: go rest
    | "profile" :: rest ->
      let rec opts trace smoke = function
        | "--trace" :: file :: rest -> opts (Some file) smoke rest
        | "--trace" :: [] ->
          Printf.eprintf "--trace needs a FILE argument\n";
          usage ()
        | "--smoke" :: rest -> opts trace true rest
        | rest -> Profile (trace, smoke) :: go rest
      in
      opts None false rest
    | other :: _ ->
      Printf.eprintf "unknown bench: %s\n" other;
      usage ()
  in
  go args

let run = function
  | Table1 -> Table1.run ()
  | Table2 -> Table2.run ()
  | Table2_quick -> Table2.run ~scale:0.5 ()
  | Profile (trace, smoke) -> Profile.run ?trace ~smoke ()
  | Micro -> Micro.run ()
  | Ablation -> Ablation.run ()

let () =
  match parse_actions (List.tl (Array.to_list Sys.argv)) with
  | [] ->
    Table1.run ();
    Table2.run ();
    Profile.run ();
    Micro.run ();
    Ablation.run ()
  | actions -> List.iter run actions

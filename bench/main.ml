(* Benchmark harness entry point.

   Reproduces every quantitative result of the paper's evaluation:
     table1   - Table 1, processing time per input block on aiesim
     table2   - Table 2, wall-clock time of cgsim vs x86sim vs aiesim
     profile  - Section 5.2 kernel-time fraction
     micro    - bechamel micro-benchmarks of framework primitives
     ablation - design-choice sweeps (thunk cost, buffering, placement)

   With no arguments all five run in order.

   profile takes options:
     --trace FILE   run under an obs session and write a Chrome
                    trace-event JSON (Perfetto-loadable)
     --json FILE    write per-app stats as machine-readable JSON
     --smoke        reduced repetition counts (CI guard for the
                    instrumentation hooks)

   micro takes options:
     --json FILE    write estimates and the block-transfer, SPSC and
                    fusion comparisons as machine-readable JSON
     --smoke        reduced quotas and element counts for CI
     --fuse on|off  run the warm-serving section with operator fusion
                    enabled or disabled (default on); the fusion
                    comparison section always measures both

   serve benchmarks parallel request serving over Cgsim.Pool:
     --json FILE    write requests/sec + scaling per app as JSON
     --smoke        fewer requests and domain counts for CI
     --domains CSV  domain counts to sweep (default 1,2,4,8)
     --requests N   requests per app per domain count
     --warm on|off  restrict to the warm (instance cache + batching) or
                    cold (fresh instance per attempt) path; default runs
                    both and asserts per-request output equality
     --chaos        serve under deterministic fault injection instead:
                    seeded kernel raises + a stall, per-request deadline
                    and retry supervision; writes schema
                    "cgsim-bench-chaos/1" and fails unless every fault
                    was absorbed (at least one by retry)

   loadtest runs open-loop Poisson arrivals against Cgsim.Pool:
     --json FILE    write p50/p99/p999 + error rate per rate step as
                    JSON (schema "cgsim-bench-load/1")
     --metrics FILE write the last step's Prometheus exposition
     --rates CSV    offered arrival rates in req/s (default 50,200,800)
     --requests N   requests per rate step
     --chaos        inject transient faults with retry supervision
     --smoke        one low rate, few requests (CI)

   check-json FILE [--schema NAME] parses FILE with the strict
   Obs.Json parser and requires a top-level object with a "schema"
   string (equal to NAME when given); exits nonzero
   on malformed output (the CI guard for --json).

   check-prom FILE validates FILE as Prometheus text exposition with
   the strict Obs.Prom parser (the CI guard for --metrics). *)

let usage () =
  print_endline
    "usage: main.exe [table1|table2|table2-quick|profile [--trace FILE] [--json FILE] \
     [--folded FILE] [--smoke]|micro [--json FILE] [--smoke] [--fuse on|off]|serve [--json FILE] [--smoke] \
     [--domains CSV] [--requests N] [--warm on|off] [--chaos]|loadtest [--json FILE] [--metrics FILE] \
     [--rates CSV] [--requests N] [--chaos] [--smoke]|ablation|fuzz [--json FILE] [--count N] \
     [--smoke]|check-json FILE|check-prom FILE]...";
  exit 2

type action =
  | Table1
  | Table2
  | Table2_quick
  | Profile of string option * string option * string option * bool
      (* trace file, json file, folded file, smoke *)
  | Micro of string option * bool * bool option  (* json file, smoke, fuse *)
  | Serve of string option * bool * int list option * int option * bool option * bool
      (* json file, smoke, domain counts, requests, warm, chaos *)
  | Loadtest of string option * string option * bool * bool * float list option * int option
      (* json file, metrics file, smoke, chaos, rates, requests *)
  | Ablation
  | Fuzz of string option * bool * int option  (* json file, smoke, count *)
  | Check_json of string * string option
  | Check_prom of string

let parse_actions args =
  let rec go = function
    | [] -> []
    | "table1" :: rest -> Table1 :: go rest
    | "table2" :: rest -> Table2 :: go rest
    | "table2-quick" :: rest -> Table2_quick :: go rest
    | "micro" :: rest ->
      let rec opts json smoke fuse = function
        | "--json" :: file :: rest -> opts (Some file) smoke fuse rest
        | "--json" :: [] ->
          Printf.eprintf "--json needs a FILE argument\n";
          usage ()
        | "--smoke" :: rest -> opts json true fuse rest
        | "--fuse" :: v :: rest when v = "on" || v = "off" ->
          opts json smoke (Some (v = "on")) rest
        | "--fuse" :: _ ->
          Printf.eprintf "--fuse needs \"on\" or \"off\"\n";
          usage ()
        | rest -> Micro (json, smoke, fuse) :: go rest
      in
      opts None false None rest
    | "serve" :: rest ->
      let parse_domains s =
        match String.split_on_char ',' s |> List.map int_of_string_opt with
        | exception _ -> None
        | parts ->
          let ds = List.filter_map Fun.id parts in
          if List.length ds = List.length parts && ds <> [] && List.for_all (fun d -> d > 0) ds
          then Some ds
          else None
      in
      let rec opts json smoke doms reqs warm chaos = function
        | "--json" :: file :: rest -> opts (Some file) smoke doms reqs warm chaos rest
        | "--json" :: [] ->
          Printf.eprintf "--json needs a FILE argument\n";
          usage ()
        | "--smoke" :: rest -> opts json true doms reqs warm chaos rest
        | "--chaos" :: rest -> opts json smoke doms reqs warm true rest
        | "--warm" :: v :: rest when v = "on" || v = "off" ->
          opts json smoke doms reqs (Some (v = "on")) chaos rest
        | "--warm" :: _ ->
          Printf.eprintf "--warm needs \"on\" or \"off\"\n";
          usage ()
        | "--domains" :: csv :: rest ->
          (match parse_domains csv with
           | Some ds -> opts json smoke (Some ds) reqs warm chaos rest
           | None ->
             Printf.eprintf "--domains needs a CSV of positive ints (e.g. 1,2,4)\n";
             usage ())
        | "--domains" :: [] ->
          Printf.eprintf "--domains needs a CSV argument\n";
          usage ()
        | "--requests" :: n :: rest ->
          (match int_of_string_opt n with
           | Some r when r > 0 -> opts json smoke doms (Some r) warm chaos rest
           | _ ->
             Printf.eprintf "--requests needs a positive integer\n";
             usage ())
        | "--requests" :: [] ->
          Printf.eprintf "--requests needs an argument\n";
          usage ()
        | rest -> Serve (json, smoke, doms, reqs, warm, chaos) :: go rest
      in
      opts None false None None None false rest
    | "ablation" :: rest -> Ablation :: go rest
    | "fuzz" :: rest ->
      let rec opts json smoke count = function
        | "--json" :: file :: rest -> opts (Some file) smoke count rest
        | "--json" :: [] ->
          Printf.eprintf "--json needs a FILE argument\n";
          usage ()
        | "--smoke" :: rest -> opts json true count rest
        | "--count" :: n :: rest ->
          (match int_of_string_opt n with
           | Some c when c > 0 -> opts json smoke (Some c) rest
           | _ ->
             Printf.eprintf "--count needs a positive integer\n";
             usage ())
        | "--count" :: [] ->
          Printf.eprintf "--count needs an argument\n";
          usage ()
        | rest -> Fuzz (json, smoke, count) :: go rest
      in
      opts None false None rest
    | "loadtest" :: rest ->
      let parse_rates s =
        match String.split_on_char ',' s |> List.map float_of_string_opt with
        | exception _ -> None
        | parts ->
          let rs = List.filter_map Fun.id parts in
          if List.length rs = List.length parts && rs <> [] && List.for_all (fun r -> r > 0.) rs
          then Some rs
          else None
      in
      let rec opts json metrics smoke chaos rates reqs = function
        | "--json" :: file :: rest -> opts (Some file) metrics smoke chaos rates reqs rest
        | "--json" :: [] ->
          Printf.eprintf "--json needs a FILE argument\n";
          usage ()
        | "--metrics" :: file :: rest -> opts json (Some file) smoke chaos rates reqs rest
        | "--metrics" :: [] ->
          Printf.eprintf "--metrics needs a FILE argument\n";
          usage ()
        | "--smoke" :: rest -> opts json metrics true chaos rates reqs rest
        | "--chaos" :: rest -> opts json metrics smoke true rates reqs rest
        | "--rates" :: csv :: rest ->
          (match parse_rates csv with
           | Some rs -> opts json metrics smoke chaos (Some rs) reqs rest
           | None ->
             Printf.eprintf "--rates needs a CSV of positive numbers (e.g. 50,200,800)\n";
             usage ())
        | "--rates" :: [] ->
          Printf.eprintf "--rates needs a CSV argument\n";
          usage ()
        | "--requests" :: n :: rest ->
          (match int_of_string_opt n with
           | Some r when r > 0 -> opts json metrics smoke chaos rates (Some r) rest
           | _ ->
             Printf.eprintf "--requests needs a positive integer\n";
             usage ())
        | "--requests" :: [] ->
          Printf.eprintf "--requests needs an argument\n";
          usage ()
        | rest -> Loadtest (json, metrics, smoke, chaos, rates, reqs) :: go rest
      in
      opts None None false false None None rest
    | "profile" :: rest ->
      let rec opts trace json folded smoke = function
        | "--trace" :: file :: rest -> opts (Some file) json folded smoke rest
        | "--trace" :: [] ->
          Printf.eprintf "--trace needs a FILE argument\n";
          usage ()
        | "--json" :: file :: rest -> opts trace (Some file) folded smoke rest
        | "--json" :: [] ->
          Printf.eprintf "--json needs a FILE argument\n";
          usage ()
        | "--folded" :: file :: rest -> opts trace json (Some file) smoke rest
        | "--folded" :: [] ->
          Printf.eprintf "--folded needs a FILE argument\n";
          usage ()
        | "--smoke" :: rest -> opts trace json folded true rest
        | rest -> Profile (trace, json, folded, smoke) :: go rest
      in
      opts None None None false rest
    | "check-json" :: file :: "--schema" :: name :: rest ->
      Check_json (file, Some name) :: go rest
    | "check-json" :: "--schema" :: _ ->
      Printf.eprintf "check-json needs the FILE before --schema\n";
      usage ()
    | "check-json" :: file :: rest -> Check_json (file, None) :: go rest
    | "check-json" :: [] ->
      Printf.eprintf "check-json needs a FILE argument\n";
      usage ()
    | "check-prom" :: file :: rest -> Check_prom file :: go rest
    | "check-prom" :: [] ->
      Printf.eprintf "check-prom needs a FILE argument\n";
      usage ()
    | other :: _ ->
      Printf.eprintf "unknown bench: %s\n" other;
      usage ()
  in
  go args

let check_json ?expect file =
  let contents =
    try In_channel.with_open_bin file In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "check-json: cannot read %s: %s\n" file msg;
      exit 1
  in
  match Obs.Json.of_string contents with
  | Error msg ->
    Printf.eprintf "check-json: %s is malformed: %s\n" file msg;
    exit 1
  | Ok doc ->
    (match Option.bind (Obs.Json.member "schema" doc) Obs.Json.to_str, expect with
     | Some schema, Some want when schema <> want ->
       Printf.eprintf "check-json: %s has schema %s, expected %s\n" file schema want;
       exit 1
     | Some schema, _ -> Printf.printf "check-json: %s ok (schema %s)\n%!" file schema
     | None, _ ->
       Printf.eprintf "check-json: %s has no \"schema\" string\n" file;
       exit 1)

let check_prom file =
  let contents =
    try In_channel.with_open_bin file In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "check-prom: cannot read %s: %s\n" file msg;
      exit 1
  in
  match Obs.Prom.validate contents with
  | Ok () -> Printf.printf "check-prom: %s ok\n%!" file
  | Error msg ->
    Printf.eprintf "check-prom: %s is malformed: %s\n" file msg;
    exit 1

let run = function
  | Table1 -> Table1.run ()
  | Table2 -> Table2.run ()
  | Table2_quick -> Table2.run ~scale:0.5 ()
  | Profile (trace, json, folded, smoke) -> Profile.run ?trace ?json ?folded ~smoke ()
  | Micro (json, smoke, fuse) -> Micro.run ?json ~smoke ?fuse ()
  | Serve (json, smoke, domains, requests, warm, chaos) ->
    if chaos then Serve.run_chaos ?json ~smoke ?requests ()
    else Serve.run ?json ~smoke ?domains ?requests ?warm ()
  | Loadtest (json, metrics, smoke, chaos, rates, requests) ->
    Loadtest.run ?json ?metrics ~smoke ~chaos ?rates ?requests ()
  | Ablation -> Ablation.run ()
  | Fuzz (json, smoke, count) -> Fuzz.run ?json ~smoke ?count ()
  | Check_json (file, expect) -> check_json ?expect file
  | Check_prom file -> check_prom file

let () =
  match parse_actions (List.tl (Array.to_list Sys.argv)) with
  | [] ->
    Table1.run ();
    Table2.run ();
    Profile.run ();
    Micro.run ();
    Ablation.run ()
  | actions -> List.iter run actions

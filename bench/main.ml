(* Benchmark harness entry point.

   Reproduces every quantitative result of the paper's evaluation:
     table1   - Table 1, processing time per input block on aiesim
     table2   - Table 2, wall-clock time of cgsim vs x86sim vs aiesim
     profile  - Section 5.2 kernel-time fraction
     micro    - bechamel micro-benchmarks of framework primitives
     ablation - design-choice sweeps (thunk cost, buffering, placement)

   With no arguments all five run in order.

   Options are parsed by the shared Cli module, so every subcommand
   spells --json/--metrics/--schema/--smoke/--requests the same way:

   profile [--trace FILE] [--json FILE] [--folded FILE] [--smoke]

   micro [--json FILE] [--smoke] [--fuse on|off]

   serve benchmarks parallel request serving over Cgsim.Pool:
     --json FILE    write requests/sec + scaling per app as JSON
     --smoke        fewer requests and domain counts for CI
     --domains CSV  domain counts to sweep (default 1,2,4,8)
     --requests N   requests per app per domain count
     --warm on|off  restrict to the warm (instance cache + batching) or
                    cold (fresh instance per attempt) path; default runs
                    both and asserts per-request output equality
     --chaos        serve under deterministic fault injection instead:
                    seeded kernel raises + a stall, per-request deadline
                    and retry supervision; writes schema
                    "cgsim-bench-chaos/1" and fails unless every fault
                    was absorbed (at least one by retry)

   loadtest runs open-loop Poisson arrivals against Cgsim.Pool, or — with
   --remote — against a running `cgx serve` daemon through Serve.Client:
     --json FILE    write p50/p99/p999 + error rate per rate step as
                    JSON (schema "cgsim-bench-load/2")
     --metrics FILE write the last step's Prometheus exposition
     --rates CSV    offered arrival rates in req/s (default 50,200,800)
     --requests N   requests per rate step
     --chaos        inject transient faults with retry supervision
                    (in-process only; rejected with --remote)
     --remote ADDR  drive a cgx serve daemon over its socket (unix:PATH
                    or HOST:PORT), pipelined, measuring the network path
     --smoke        one low rate, few requests (CI)

   fuzz [--json FILE] [--count N] [--smoke]

   check-json FILE [--schema NAME] parses FILE with the strict
   Obs.Json parser and requires a top-level object with a "schema"
   string (equal to NAME when given); exits nonzero
   on malformed output (the CI guard for --json).

   check-prom FILE validates FILE as Prometheus text exposition with
   the strict Obs.Prom parser (the CI guard for --metrics). *)

let usage () =
  print_endline
    "usage: main.exe [table1|table2|table2-quick|profile [--trace FILE] [--json FILE] \
     [--folded FILE] [--smoke]|micro [--json FILE] [--smoke] [--fuse on|off]|serve [--json FILE] [--smoke] \
     [--domains CSV] [--requests N] [--warm on|off] [--chaos]|loadtest [--json FILE] [--metrics FILE] \
     [--rates CSV] [--requests N] [--chaos] [--remote ADDR] [--smoke]|ablation|fuzz [--json FILE] [--count N] \
     [--smoke]|check-json FILE [--schema NAME]|check-prom FILE]...";
  exit 2

type action =
  | Table1
  | Table2
  | Table2_quick
  | Profile of Cli.opts
  | Micro of Cli.opts
  | Serve_pool of Cli.opts
  | Loadtest of Cli.opts
  | Ablation
  | Fuzz of Cli.opts
  | Check_json of string * string option
  | Check_prom of string

let parse_opts ~cmd ~accept rest k =
  match Cli.parse ~cmd ~accept rest with
  | Ok (opts, rest) -> k opts rest
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    usage ()

let parse_actions args =
  let rec go = function
    | [] -> []
    | "table1" :: rest -> Table1 :: go rest
    | "table2" :: rest -> Table2 :: go rest
    | "table2-quick" :: rest -> Table2_quick :: go rest
    | "micro" :: rest ->
      parse_opts ~cmd:"micro" ~accept:[ "--json"; "--smoke"; "--fuse" ] rest (fun o rest ->
          Micro o :: go rest)
    | "serve" :: rest ->
      parse_opts ~cmd:"serve"
        ~accept:[ "--json"; "--smoke"; "--chaos"; "--warm"; "--domains"; "--requests" ]
        rest
        (fun o rest -> Serve_pool o :: go rest)
    | "ablation" :: rest -> Ablation :: go rest
    | "fuzz" :: rest ->
      parse_opts ~cmd:"fuzz" ~accept:[ "--json"; "--smoke"; "--count" ] rest (fun o rest ->
          Fuzz o :: go rest)
    | "loadtest" :: rest ->
      parse_opts ~cmd:"loadtest"
        ~accept:[ "--json"; "--metrics"; "--smoke"; "--chaos"; "--rates"; "--requests"; "--remote" ]
        rest
        (fun o rest -> Loadtest o :: go rest)
    | "profile" :: rest ->
      parse_opts ~cmd:"profile" ~accept:[ "--trace"; "--json"; "--folded"; "--smoke" ] rest
        (fun o rest -> Profile o :: go rest)
    | "check-json" :: rest ->
      (* The file may come before or after --schema. *)
      parse_opts ~cmd:"check-json" ~accept:[ "--schema" ] rest (fun o rest ->
          match rest with
          | file :: rest ->
            parse_opts ~cmd:"check-json" ~accept:[ "--schema" ] rest (fun o2 rest ->
                let schema = match o2.Cli.schema with Some _ as s -> s | None -> o.Cli.schema in
                Check_json (file, schema) :: go rest)
          | [] ->
            Printf.eprintf "check-json needs a FILE argument\n";
            usage ())
    | "check-prom" :: file :: rest when file <> "--schema" -> Check_prom file :: go rest
    | "check-prom" :: _ ->
      Printf.eprintf "check-prom needs a FILE argument\n";
      usage ()
    | other :: _ ->
      Printf.eprintf "unknown bench: %s\n" other;
      usage ()
  in
  go args

let check_json ?expect file =
  let contents =
    try In_channel.with_open_bin file In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "check-json: cannot read %s: %s\n" file msg;
      exit 1
  in
  match Obs.Json.of_string contents with
  | Error msg ->
    Printf.eprintf "check-json: %s is malformed: %s\n" file msg;
    exit 1
  | Ok doc ->
    (match Option.bind (Obs.Json.member "schema" doc) Obs.Json.to_str, expect with
     | Some schema, Some want when schema <> want ->
       Printf.eprintf "check-json: %s has schema %s, expected %s\n" file schema want;
       exit 1
     | Some schema, _ -> Printf.printf "check-json: %s ok (schema %s)\n%!" file schema
     | None, _ ->
       Printf.eprintf "check-json: %s has no \"schema\" string\n" file;
       exit 1)

let check_prom file =
  let contents =
    try In_channel.with_open_bin file In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "check-prom: cannot read %s: %s\n" file msg;
      exit 1
  in
  match Obs.Prom.validate contents with
  | Ok () -> Printf.printf "check-prom: %s ok\n%!" file
  | Error msg ->
    Printf.eprintf "check-prom: %s is malformed: %s\n" file msg;
    exit 1

let run = function
  | Table1 -> Table1.run ()
  | Table2 -> Table2.run ()
  | Table2_quick -> Table2.run ~scale:0.5 ()
  | Profile o ->
    Profile.run ?trace:o.Cli.trace ?json:o.Cli.json ?folded:o.Cli.folded ~smoke:o.Cli.smoke ()
  | Micro o -> Micro.run ?json:o.Cli.json ~smoke:o.Cli.smoke ?fuse:o.Cli.fuse ()
  | Serve_pool o ->
    if o.Cli.chaos then Serve_bench.run_chaos ?json:o.Cli.json ~smoke:o.Cli.smoke ?requests:o.Cli.requests ()
    else
      Serve_bench.run ?json:o.Cli.json ~smoke:o.Cli.smoke ?domains:o.Cli.domains
        ?requests:o.Cli.requests ?warm:o.Cli.warm ()
  | Loadtest o ->
    Loadtest.run ?json:o.Cli.json ?metrics:o.Cli.metrics ~smoke:o.Cli.smoke ~chaos:o.Cli.chaos
      ?rates:o.Cli.rates ?requests:o.Cli.requests ?remote:o.Cli.remote ()
  | Ablation -> Ablation.run ()
  | Fuzz o -> Fuzz.run ?json:o.Cli.json ~smoke:o.Cli.smoke ?count:o.Cli.count ()
  | Check_json (file, expect) -> check_json ?expect file
  | Check_prom file -> check_prom file

let () =
  match parse_actions (List.tl (Array.to_list Sys.argv)) with
  | [] ->
    Table1.run ();
    Table2.run ();
    Profile.run ();
    Micro.run ();
    Ablation.run ()
  | actions -> List.iter run actions

(* Table 2 reproduction: wall-clock simulation time of the same graphs
   under the three simulators — cgsim (cooperative, single thread),
   x86sim (one OS thread per kernel), aiesim (cycle-approximate).

   The paper repeats each test vector until x86sim runs ~20 s; we scale
   the repetition counts down so the whole table completes in a couple of
   minutes (the per-app scale keeps the paper's repetition ratios), and
   run aiesim on a further-reduced rep count, extrapolating linearly —
   aiesim cost is strictly per-block.  Ratios between simulators are the
   result under comparison, not absolute seconds. *)

type row = {
  app : string;
  paper_reps : int;
  reps : int;
  cgsim_s : float;
  x86sim_s : float;
  aiesim_s : float;  (* extrapolated to [reps] *)
  aiesim_reps : int;
  paper : float * float * float;  (* cgsim, x86sim, aiesim seconds *)
}

let paper_numbers = function
  | "bitonic" -> 1024, (14.32, 22.90, 5825.96)
  | "farrow" -> 512, (22.26, 20.70, 4287.03)
  | "iir" -> 256, (18.20, 21.37, 4346.19)
  | "bilinear" -> 256, (14.95, 15.57, 3534.90)
  | app -> invalid_arg ("no paper numbers for " ^ app)

(* Scale applied to the paper's repetition counts so cgsim lands around a
   second per app on a laptop-class machine. *)
let default_scale = function
  | "bitonic" -> 24.0
  | "farrow" -> 3.0
  | "iir" -> 1.5
  | "bilinear" -> 12.0
  | _ -> 1.0

let aiesim_divisor = 16

let wall f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  x, Unix.gettimeofday () -. t0

let run_one ?scale (h : Apps.Harness.t) =
  let paper_reps, paper = paper_numbers h.name in
  let scale = Option.value scale ~default:(default_scale h.name) in
  let reps = max 1 (int_of_float (float_of_int paper_reps *. scale)) in
  (* cgsim *)
  let (), cgsim_s =
    wall (fun () ->
        let sinks, contents = h.make_sinks () in
        let _ = Cgsim.Runtime.execute_exn (h.graph ()) ~sources:(h.sources ~reps) ~sinks in
        (* Functional spot-check on the cgsim run keeps the timing loop
           honest without re-checking the other two runs (their outputs
           are covered by the test suite). *)
        match h.check ~reps (contents ()) with
        | Ok () -> ()
        | Error e -> failwith (h.name ^ ": " ^ e))
  in
  (* x86sim *)
  let (), x86sim_s =
    wall (fun () ->
        let sinks, _ = h.make_sinks () in
        ignore (X86sim.Sim.run_exn (h.graph ()) ~sources:(h.sources ~reps) ~sinks))
  in
  (* aiesim, reduced reps, extrapolated *)
  let aiesim_reps = max 4 (reps / aiesim_divisor) in
  let (), aiesim_raw_s =
    wall (fun () ->
        let sinks, _ = h.make_sinks () in
        let deploy = Aiesim.Deploy.baseline (h.graph ()) in
        ignore (Aiesim.Sim.run deploy ~sources:(h.sources ~reps:aiesim_reps) ~sinks))
  in
  let aiesim_s = aiesim_raw_s *. (float_of_int reps /. float_of_int aiesim_reps) in
  { app = h.name; paper_reps; reps; cgsim_s; x86sim_s; aiesim_s; aiesim_reps; paper }

let rows ?scale () = List.map (run_one ?scale) Apps.Harness.all

let print_rows rows =
  Printf.printf "\n== Table 2: wall-clock simulation time (seconds) ==\n";
  Printf.printf "%-9s %9s %9s | %8s %8s %9s | %8s %8s %9s | %7s %7s\n" "graph" "paper-rep" "reps"
    "p-cgsim" "p-x86" "p-aiesim" "cgsim" "x86sim" "aiesim*" "x86/cg" "aie/cg";
  List.iter
    (fun r ->
      let pc, px, pa = r.paper in
      Printf.printf "%-9s %9d %9d | %8.2f %8.2f %9.2f | %8.2f %8.2f %9.2f | %7.2f %7.0f\n" r.app
        r.paper_reps r.reps pc px pa r.cgsim_s r.x86sim_s r.aiesim_s (r.x86sim_s /. r.cgsim_s)
        (r.aiesim_s /. r.cgsim_s))
    rows;
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "(*aiesim measured at reps/%d and extrapolated linearly.  Shapes to compare: cgsim\n\
    \ beats x86sim on the sync-dominated bitonic; the paper's farrow crossover (x86sim\n\
    \ slightly ahead) needs >= 2 physical cores so its two kernels actually run in\n\
    \ parallel - this machine reports %d core%s.  aiesim is the slowest simulator per\n\
    \ block, though as a trace-replay design it is far cheaper than AMD's ISS.)\n%!"
    aiesim_divisor cores (if cores = 1 then "" else "s")

let run ?scale () = print_rows (rows ?scale ())

(* Ablation benchmarks for the design choices DESIGN.md calls out:

   1. adapter-thunk cost sweep — how the extracted/hand-written relative
      throughput (Table 1's result) depends on the two thunk cost
      parameters, showing the mechanism rather than a single point;
   2. queue capacity — cooperative-scheduler context-switch frequency vs.
      buffering (cgsim wall-clock);
   3. x86sim buffer depth — the deep-host-buffering choice of the
      thread-per-kernel simulator;
   4. placement — stream-route length (hops) vs. per-block latency on the
      cycle-approximate simulator;
   5. flight recorder — on/off A/B of the always-on per-domain ring on
      the Table 2 cgsim path; the design claim is < 2 % overhead. *)

let measure_rel (h : Apps.Harness.t) =
  let run deploy =
    let sinks, _ = h.make_sinks () in
    Aiesim.Sim.run deploy ~sources:(h.sources ~reps:6) ~sinks
  in
  let base = run (Aiesim.Deploy.baseline (h.graph ())) in
  let extr = run (Aiesim.Deploy.extracted (h.graph ())) in
  Aiesim.Sim.relative_throughput_percent ~baseline:base ~extracted:extr

let thunk_sweep () =
  Printf.printf "\n-- ablation 1: adapter thunk cost vs relative throughput --\n";
  Printf.printf "%8s %9s | %8s %8s %8s\n" "scalar" "loop-frac" "bitonic" "farrow" "bilinear";
  let saved_s = !Aie.Cfg.thunk_scalar_ops_per_stream_access in
  let saved_l = !Aie.Cfg.thunk_loop_extra_per_access in
  List.iter
    (fun (s, l) ->
      Aie.Cfg.thunk_scalar_ops_per_stream_access := s;
      Aie.Cfg.thunk_loop_extra_per_access := l;
      Printf.printf "%8d %9.2f | %7.1f%% %7.1f%% %7.1f%%\n" s l
        (measure_rel Apps.Harness.bitonic)
        (measure_rel Apps.Harness.farrow)
        (measure_rel Apps.Harness.bilinear))
    [ 0, 0.0; 0, 0.1; 1, 0.0; 1, 0.1; 1, 0.2; 2, 0.1; 2, 0.4; 4, 0.4 ];
  Aie.Cfg.thunk_scalar_ops_per_stream_access := saved_s;
  Aie.Cfg.thunk_loop_extra_per_access := saved_l;
  Printf.printf "(zero thunk cost = parity by construction; the calibrated point is %d / %.2f)\n"
    saved_s saved_l

let queue_capacity_sweep () =
  Printf.printf "\n-- ablation 2: cgsim queue capacity vs wall time (farrow x16) --\n";
  Printf.printf "%10s %12s %10s\n" "capacity" "wall (ms)" "slices";
  List.iter
    (fun queue_capacity ->
      let h = Apps.Harness.farrow in
      let sinks, _ = h.make_sinks () in
      let t0 = Unix.gettimeofday () in
      let stats =
        Cgsim.Runtime.execute_exn
          ~config:Cgsim.Run_config.(with_queue_capacity queue_capacity default)
          (h.graph ()) ~sources:(h.sources ~reps:16) ~sinks
      in
      let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      Printf.printf "%10d %12.1f %10d\n" queue_capacity ms stats.Cgsim.Sched.slices)
    [ 2; 8; 32; 128; 512; 4096 ];
  Printf.printf "(small queues force one context switch per element; the default is per-net,\n\
                \ derived from window sizes / %d elements for streams)\n"
    Cgsim.Settings.default_stream_depth

let x86_buffer_sweep () =
  Printf.printf "\n-- ablation 3: x86sim queue depth vs wall time (farrow x16) --\n";
  Printf.printf "%10s %12s\n" "capacity" "wall (ms)";
  List.iter
    (fun queue_capacity ->
      let h = Apps.Harness.farrow in
      let sinks, _ = h.make_sinks () in
      let t0 = Unix.gettimeofday () in
      let _ =
        X86sim.Sim.run_exn
          ~config:Cgsim.Run_config.(with_queue_capacity queue_capacity default)
          (h.graph ()) ~sources:(h.sources ~reps:16) ~sinks
      in
      Printf.printf "%10d %12.1f\n" queue_capacity ((Unix.gettimeofday () -. t0) *. 1e3))
    [ 4; 64; 1024; 8192 ]

let placement_sweep () =
  Printf.printf "\n-- ablation 4: placement (route hops) vs per-block time (farrow) --\n";
  let h = Apps.Harness.farrow in
  let run label place =
    let d = Aiesim.Deploy.make ?place ~label ~adapter:Aiesim.Deploy.Direct (h.graph ()) in
    let sinks, _ = h.make_sinks () in
    let report = Aiesim.Sim.run d ~sources:(h.sources ~reps:6) ~sinks in
    Printf.printf "%12s: %8.1f ns/block\n" label report.Aiesim.Sim.ns_per_block
  in
  run "adjacent" None;
  run "spread"
    (Some
       (fun name ->
         (* Pin the two farrow stages to opposite corners of the array. *)
         if String.equal name "farrow_stage1_0" then
           Some { Aie.Array_model.col = 0; row = 1 }
         else if String.equal name "farrow_stage2_0" then
           Some { Aie.Array_model.col = Aie.Cfg.array_cols - 1; row = Aie.Cfg.array_rows }
         else None));
  Printf.printf "(spread placement adds stream-switch hop latency to every cascade transfer;\n\
                \ with shallow switch FIFOs the latency couples into throughput, which is why\n\
                \ the aiecompiler and our auto-placer keep communicating kernels adjacent)\n"

let flight_overhead () =
  Printf.printf "\n-- ablation 5: flight recorder on/off (cgsim, farrow x16) --\n";
  let h = Apps.Harness.farrow in
  let one enabled =
    Obs.Flight.set_enabled enabled;
    let sinks, _ = h.make_sinks () in
    let t0 = Unix.gettimeofday () in
    ignore (Cgsim.Runtime.execute_exn (h.graph ()) ~sources:(h.sources ~reps:16) ~sinks);
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  (* Interleaved best-of-N pairs: alternating configs cancels slow host
     drift, and the minimum is the least noise-contaminated estimate of
     the true cost on a shared host. *)
  ignore (one true);
  ignore (one false);
  let off = ref Float.infinity and on = ref Float.infinity in
  for _ = 1 to 8 do
    off := Float.min !off (one false);
    on := Float.min !on (one true)
  done;
  let off = !off and on = !on in
  Obs.Flight.set_enabled true;
  let overhead = (on -. off) /. off *. 100.0 in
  Printf.printf "%10s %12s\n" "flight" "wall (ms)";
  Printf.printf "%10s %12.2f\n%10s %12.2f\n" "off" off "on" on;
  Printf.printf "overhead: %+.2f%% (events are per scheduler slice, never per element;\n\
                \ the design budget is < 2%%)\n"
    overhead

let run () =
  Printf.printf "\n== Ablations ==\n";
  thunk_sweep ();
  queue_capacity_sweep ();
  x86_buffer_sweep ();
  placement_sweep ();
  flight_overhead ()

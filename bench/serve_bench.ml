(* Parallel serving benchmark: throughput of Cgsim.Pool over the four
   example applications, cold against warm.

   Each request is one complete cgsim simulation of the app's graph at a
   serving-sized repetition count (small enough that per-request setup
   is a real fraction of the work — the regime warm pools exist for).
   For every domain count the same batch of requests is served twice:
   cold ([Run_config.warm = false]: a fresh Runtime instance per
   attempt) and warm (the default warm-instance cache plus pure-graph
   request batching).  Every request's output is verified against the
   scalar reference on both paths, and the warm output of each request
   is additionally asserted equal to its cold output — the speedup
   cannot quietly come from a semantic change.

   The host core count is recorded in the JSON: on a single-core
   container the efficiency at >1 domains is expected to collapse to
   ~1/domains, and the committed baseline must be read with its
   "host_cores" field in hand.  Runs with more domains than host cores
   carry "oversubscribed": true so baseline consumers can filter them
   out of scaling comparisons.

   [run ~json:file] writes schema "cgsim-bench-serve/3"; check-json
   validates it in CI.  [~warm:(Some true)] / [(Some false)] restricts
   the sweep to one path (the CI smoke runs each separately so the cold
   fallback cannot rot); the default [None] measures both and asserts
   the per-request equivalence.  The SPSC micro comparison rides along
   so the serving baseline and the queue fast-path numbers land in one
   file. *)

let default_domains = [ 1; 2; 4; 8 ]

let smoke_domains = [ 1; 2 ]

(* Serving-shaped requests: table2's per-app rep counts scaled well
   down, so one request is a short simulation whose instantiation cost
   matters — the workload the warm cache targets. *)
let serve_reps ~smoke (t : Apps.Harness.t) =
  max 1 (t.Apps.Harness.table2_reps / if smoke then 512 else 256)

(* Requests multiplexed through one warm run when the graph is pure. *)
let serve_batch = 8

(* Static predicted ceiling: profile a few single-domain requests with
   fusion off (so the self-time histograms stay per kernel instance),
   turn the Obs.Profile rows into a per-kernel ns/request cost model,
   and ask Analysis.Throughput for the sequential bound — the req/s one
   domain cannot beat.  Printed and recorded next to the measured
   numbers so the static analyser is held against reality on every
   benchmark run. *)
let probe_requests = 4

let predict_ceiling ~reps (t : Apps.Harness.t) g =
  let config =
    Cgsim.Run_config.(default |> with_lint `Off |> with_fuse false |> with_warm false)
  in
  let (), session =
    Obs.Trace.with_session (fun () ->
        let compiled = Cgsim.Runtime.compile ~config g in
        for _ = 1 to probe_requests do
          let inst = Cgsim.Runtime.new_instance compiled in
          let sinks, _ = t.Apps.Harness.make_sinks () in
          ignore
            (Cgsim.Runtime.run inst ~sources:(t.Apps.Harness.sources ~reps) ~sinks)
        done)
  in
  let rows = Obs.Profile.rows (Obs.Metrics.snapshot session.Obs.Trace.metrics) in
  let cost name =
    List.find_map
      (fun (r : Obs.Profile.row) ->
        if String.equal r.Obs.Profile.kernel name then
          Some (r.Obs.Profile.self_ns /. float_of_int probe_requests)
        else None)
      rows
  in
  match Analysis.Throughput.bound ~cost g with
  | None -> None
  | Some b ->
    (match Analysis.Throughput.sequential_per_sec b with
     | None -> None
     | Some rps -> Some (rps, b.Analysis.Throughput.b_bottleneck))

type app_run = {
  domains : int;
  mode : string;  (* "cold" | "warm" *)
  wall_ns : float;
  rps : float;
  steals : int;
  warm_hits : int;
  cold_builds : int;
  batched : int;
  outputs : Cgsim.Value.t list array;  (* per request, for cross-mode equality *)
  mutable errors : string list;
}

let run_app ~mode ~config ~domains ~requests ~reps (t : Apps.Harness.t) g =
  let contents = Array.make requests (fun () -> []) in
  let io r =
    (* Called on the executing domain; distinct [r] slots, no sharing. *)
    let sinks, c = t.Apps.Harness.make_sinks () in
    contents.(r) <- c;
    t.Apps.Harness.sources ~reps, sinks
  in
  let stats = Cgsim.Pool.run ~config ~domains ~requests ~io g in
  let outputs = Array.map (fun c -> c ()) contents in
  let errors = ref [] in
  Array.iter
    (fun (res : Cgsim.Pool.request_result) ->
      match res.Cgsim.Pool.outcome with
      | Cgsim.Runtime.Completed _ ->
        (match t.Apps.Harness.check ~reps outputs.(res.Cgsim.Pool.req_id) with
         | Ok () -> ()
         | Error e ->
           errors :=
             Printf.sprintf "req %d (%s): wrong output: %s" res.Cgsim.Pool.req_id mode e
             :: !errors)
      | o ->
        errors :=
          Format.asprintf "req %d (%s): %a" res.Cgsim.Pool.req_id mode Cgsim.Runtime.pp_outcome o
          :: !errors)
    stats.Cgsim.Pool.results;
  {
    domains;
    mode;
    wall_ns = stats.Cgsim.Pool.wall_ns;
    rps = float_of_int requests /. (stats.Cgsim.Pool.wall_ns /. 1e9);
    steals = stats.Cgsim.Pool.steals;
    warm_hits = stats.Cgsim.Pool.warm_hits;
    cold_builds = stats.Cgsim.Pool.cold_builds;
    batched = stats.Cgsim.Pool.batched;
    outputs;
    errors = List.rev !errors;
  }

(* Per-request warm == cold: the fast path must be observationally
   identical, element for element. *)
let check_equivalence (cold : app_run) (warm : app_run) =
  Array.iteri
    (fun r cold_out ->
      let warm_out = warm.outputs.(r) in
      if
        List.length cold_out <> List.length warm_out
        || not (List.for_all2 Cgsim.Value.equal cold_out warm_out)
      then
        warm.errors <-
          warm.errors @ [ Printf.sprintf "req %d: warm output differs from cold" r ])
    cold.outputs

let json_of_app_run ~base_wall ~host_cores (r : app_run) =
  let speedup = base_wall /. r.wall_ns in
  Obs.Json.Obj
    [
      "domains", Obs.Json.Num (float_of_int r.domains);
      "mode", Obs.Json.Str r.mode;
      (* More domains than host cores: the run timeshares and its
         efficiency number is not a scaling datapoint — marked so
         baseline consumers can filter instead of reverse-engineering
         it from host_cores. *)
      "oversubscribed", Obs.Json.Bool (r.domains > host_cores);
      "wall_ms", Obs.Json.Num (r.wall_ns /. 1e6);
      "requests_per_sec", Obs.Json.Num r.rps;
      "speedup_vs_1", Obs.Json.Num speedup;
      "efficiency", Obs.Json.Num (speedup /. float_of_int r.domains);
      "steals", Obs.Json.Num (float_of_int r.steals);
      "warm_hits", Obs.Json.Num (float_of_int r.warm_hits);
      "cold_builds", Obs.Json.Num (float_of_int r.cold_builds);
      "batched", Obs.Json.Num (float_of_int r.batched);
      "errors", Obs.Json.Arr (List.map (fun e -> Obs.Json.Str e) r.errors);
    ]

let run ?json ?(smoke = false) ?(domains = if smoke then smoke_domains else default_domains)
    ?requests ?warm () =
  let requests = Option.value requests ~default:(if smoke then 8 else 256) in
  let host_cores = Domain.recommended_domain_count () in
  let modes =
    match warm with
    | Some true -> [ "warm" ]
    | Some false -> [ "cold" ]
    | None -> [ "cold"; "warm" ]
  in
  Printf.printf
    "\n== Parallel serving (Cgsim.Pool, %d requests/app, modes: %s, host cores: %d) ==\n%!"
    requests (String.concat "+" modes) host_cores;
  let failures = ref 0 in
  let app_docs =
    List.map
      (fun (t : Apps.Harness.t) ->
        let reps = serve_reps ~smoke t in
        let g = t.Apps.Harness.graph () in
        Printf.printf "\n%-10s (%d reps/request, batch %d when pure)\n%!" t.Apps.Harness.name
          reps serve_batch;
        let predicted = predict_ceiling ~reps t g in
        (match predicted with
         | Some (rps, bn) ->
           Printf.printf "  static ceiling (profiled, 1 domain): %9.1f req/s  bottleneck %s\n%!"
             rps bn
         | None ->
           Printf.printf "  static ceiling: unavailable (no profiled kernel time)\n%!");
        Cgsim.Pool.clear_warm_cache ();
        let runs =
          List.concat_map
            (fun d ->
              let cold_cfg = Cgsim.Run_config.(with_warm false default) in
              let warm_cfg = Cgsim.Run_config.(with_batch serve_batch default) in
              let one mode =
                let config = if mode = "cold" then cold_cfg else warm_cfg in
                run_app ~mode ~config ~domains:d ~requests ~reps t g
              in
              let rs = List.map one modes in
              (match rs with
               | [ cold; warm ] -> check_equivalence cold warm
               | _ -> ());
              rs)
            domains
        in
        let base_wall mode =
          match List.find_opt (fun r -> r.mode = mode) runs with
          | Some r -> r.wall_ns
          | None -> 1.0
        in
        List.iter
          (fun r ->
            let speedup = base_wall r.mode /. r.wall_ns in
            Printf.printf
              "  domains=%d %-5s %8.1f ms  %9.1f req/s  speedup %5.2fx  eff %4.0f%%  steals %d  \
               warm %d  batched %d\n%!"
              r.domains r.mode (r.wall_ns /. 1e6) r.rps speedup
              (100.0 *. speedup /. float_of_int r.domains)
              r.steals r.warm_hits r.batched;
            List.iter
              (fun e ->
                incr failures;
                Printf.printf "    ERROR %s\n%!" e)
              r.errors)
          runs;
        (* Warm-over-cold at each domain count, when both ran. *)
        List.iter
          (fun d ->
            match
              ( List.find_opt (fun r -> r.mode = "cold" && r.domains = d) runs,
                List.find_opt (fun r -> r.mode = "warm" && r.domains = d) runs )
            with
            | Some c, Some w ->
              Printf.printf "  domains=%d warm/cold: %5.2fx\n%!" d (w.rps /. c.rps)
            | _ -> ())
          domains;
        Obs.Json.Obj
          [
            "name", Obs.Json.Str t.Apps.Harness.name;
            "reps_per_request", Obs.Json.Num (float_of_int reps);
            "requests", Obs.Json.Num (float_of_int requests);
            "batch", Obs.Json.Num (float_of_int serve_batch);
            ( "predicted_rps",
              match predicted with
              | Some (rps, _) -> Obs.Json.Num rps
              | None -> Obs.Json.Null );
            ( "predicted_bottleneck",
              match predicted with
              | Some (_, bn) -> Obs.Json.Str bn
              | None -> Obs.Json.Null );
            ( "runs",
              Obs.Json.Arr
                (List.map
                   (fun r -> json_of_app_run ~base_wall:(base_wall r.mode) ~host_cores r)
                   runs) );
          ])
      Apps.Harness.all
  in
  let sp = Micro.compare_spsc ~smoke in
  Printf.printf "\nSPSC vs MPMC element path: %.2f vs %.2f ns/elem (%.2fx)\n%!"
    sp.Micro.spsc_ns_per_elem sp.Micro.mpmc_ns_per_elem sp.Micro.sp_speedup;
  (match json with
   | None -> ()
   | Some file ->
     let doc =
       Obs.Json.Obj
         [
           "schema", Obs.Json.Str "cgsim-bench-serve/3";
           "smoke", Obs.Json.Bool smoke;
           "host_cores", Obs.Json.Num (float_of_int host_cores);
           ( "modes",
             Obs.Json.Arr (List.map (fun m -> Obs.Json.Str m) modes) );
           "apps", Obs.Json.Arr app_docs;
           "spsc_micro", Micro.json_of_spsc sp;
         ]
     in
     (try
        Out_channel.with_open_bin file (fun oc ->
            Out_channel.output_string oc (Obs.Json.to_string doc))
      with Sys_error msg ->
        Printf.eprintf "error: cannot write %s: %s\n" file msg;
        exit 1);
     Printf.printf "wrote serving benchmark JSON to %s\n%!" file);
  if !failures > 0 then begin
    Printf.eprintf "serve: %d request(s) failed verification\n" !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Chaos mode: serving under deterministic fault injection             *)
(* ------------------------------------------------------------------ *)

(* One app, a seeded fault plan (a transient kernel raise and a single
   busy-stall that burns the per-attempt deadline), retries enabled:
   every request must end [Completed] after supervision has absorbed the
   injected faults, and at least one must have needed a retry to get
   there.  Writes schema "cgsim-bench-chaos/1"; check-json validates it
   in CI.  Exits nonzero when no fault was injected, nothing was
   recovered by retry, or any request still failed. *)
let run_chaos ?json ?(smoke = false) ?requests () =
  let t = Apps.Harness.farrow in
  let requests = Option.value requests ~default:(if smoke then 6 else 16) in
  let domains = 2 in
  let reps = serve_reps ~smoke t in
  let g = t.Apps.Harness.graph () in
  let faults =
    Cgsim.Faults.(
      plan ~seed:7
        [
          raise_on ~kernel:"*" ~after:2 ~fires:2 ();
          stall_on ~kernel:"*" ~after:5 ~fires:1 ();
        ])
  in
  let deadline_ms = if smoke then 100. else 250. in
  let retries = 2 in
  let config =
    Cgsim.Run_config.(
      default
      |> with_deadline_ms deadline_ms
      |> with_retries retries
      |> with_backoff ~base_ns:1e5 ~cap_ns:1e7
      |> with_faults faults |> with_seed 7)
  in
  Printf.printf
    "\n== Chaos serving (%s, %d requests, %d domains, deadline %.0f ms, %d retries) ==\n%!"
    t.Apps.Harness.name requests domains deadline_ms retries;
  List.iter (fun d -> Printf.printf "  fault: %s\n%!" d) (Cgsim.Faults.describe faults);
  let contents = Array.make requests (fun () -> []) in
  let io r =
    let sinks, c = t.Apps.Harness.make_sinks () in
    contents.(r) <- c;
    t.Apps.Harness.sources ~reps, sinks
  in
  let stats = Cgsim.Pool.run ~config ~domains ~requests ~io g in
  let errors = ref [] in
  Array.iter
    (fun (res : Cgsim.Pool.request_result) ->
      match res.Cgsim.Pool.outcome with
      | Cgsim.Runtime.Completed _ when not res.Cgsim.Pool.shed ->
        (match t.Apps.Harness.check ~reps (contents.(res.Cgsim.Pool.req_id) ()) with
         | Ok () -> ()
         | Error e ->
           errors := Printf.sprintf "req %d: wrong output: %s" res.Cgsim.Pool.req_id e :: !errors)
      | o ->
        errors :=
          Format.asprintf "req %d:%s %a" res.Cgsim.Pool.req_id
            (if res.Cgsim.Pool.shed then " shed;" else "")
            Cgsim.Runtime.pp_outcome o
          :: !errors)
    stats.Cgsim.Pool.results;
  let errors = List.rev !errors in
  let c = stats.Cgsim.Pool.counts in
  let injected = Cgsim.Faults.injected faults in
  Printf.printf
    "  injected %d fault(s); %d retry attempt(s); %d/%d completed (%d recovered on retry)\n%!"
    injected stats.Cgsim.Pool.retries c.Cgsim.Pool.n_completed requests c.Cgsim.Pool.n_retried_ok;
  List.iter (fun e -> Printf.printf "    ERROR %s\n%!" e) errors;
  (match json with
   | None -> ()
   | Some file ->
     let doc =
       Obs.Json.Obj
         [
           "schema", Obs.Json.Str "cgsim-bench-chaos/1";
           "smoke", Obs.Json.Bool smoke;
           "app", Obs.Json.Str t.Apps.Harness.name;
           "requests", Obs.Json.Num (float_of_int requests);
           "domains", Obs.Json.Num (float_of_int domains);
           "deadline_ms", Obs.Json.Num deadline_ms;
           "retry_budget", Obs.Json.Num (float_of_int retries);
           "faults", Obs.Json.Arr (List.map (fun d -> Obs.Json.Str d) (Cgsim.Faults.describe faults));
           "injected", Obs.Json.Num (float_of_int injected);
           "retries_performed", Obs.Json.Num (float_of_int stats.Cgsim.Pool.retries);
           "recovered_by_retry", Obs.Json.Num (float_of_int c.Cgsim.Pool.n_retried_ok);
           "breaker_tripped", Obs.Json.Bool stats.Cgsim.Pool.breaker_tripped;
           ( "outcomes",
             Obs.Json.Obj
               [
                 "completed", Obs.Json.Num (float_of_int c.Cgsim.Pool.n_completed);
                 "deadline", Obs.Json.Num (float_of_int c.Cgsim.Pool.n_deadline);
                 "cancelled", Obs.Json.Num (float_of_int c.Cgsim.Pool.n_cancelled);
                 "failed", Obs.Json.Num (float_of_int c.Cgsim.Pool.n_failed);
                 "shed", Obs.Json.Num (float_of_int c.Cgsim.Pool.n_shed);
               ] );
           "errors", Obs.Json.Arr (List.map (fun e -> Obs.Json.Str e) errors);
         ]
     in
     (try
        Out_channel.with_open_bin file (fun oc ->
            Out_channel.output_string oc (Obs.Json.to_string doc))
      with Sys_error msg ->
        Printf.eprintf "error: cannot write %s: %s\n" file msg;
        exit 1);
     Printf.printf "wrote chaos benchmark JSON to %s\n%!" file);
  if errors <> [] then begin
    Printf.eprintf "serve --chaos: %d request(s) did not recover\n" (List.length errors);
    exit 1
  end;
  if injected = 0 then begin
    Printf.eprintf "serve --chaos: fault plan never fired\n";
    exit 1
  end;
  if c.Cgsim.Pool.n_retried_ok = 0 then begin
    Printf.eprintf "serve --chaos: no injected fault was recovered by retry\n";
    exit 1
  end

(* Differential fuzz harness: seeded random SDF graphs, static linter
   verdicts held against actual runtime behavior.

   Delegates generation to {!Workloads.Sdf_gen} and the per-case oracle
   to {!Sdf_oracle}; this wrapper sweeps the deterministic case mix,
   reports per-category agreement, optionally writes machine-readable
   JSON (schema "cgsim-bench-fuzz/1"), and exits nonzero on any
   disagreement — the CI gate ci.sh runs in its fuzz-smoke step. *)

module G = Workloads.Sdf_gen

let label_of case =
  match case.G.c_defect with
  | None -> "clean"
  | Some d -> G.defect_to_string d

let run ?json ?count ~smoke () =
  let count =
    match count with
    | Some c -> c
    | None -> if smoke then 48 else 600
  in
  Printf.printf "fuzz: lint-vs-runtime differential oracle over %d generated SDF graphs\n%!"
    count;
  let t0 = Unix.gettimeofday () in
  let categories = Hashtbl.create 4 in
  let bump label bad =
    let cases, disagreeing =
      Option.value (Hashtbl.find_opt categories label) ~default:(0, 0)
    in
    Hashtbl.replace categories label (cases + 1, disagreeing + (if bad then 1 else 0))
  in
  let problems = ref [] in
  for i = 0 to count - 1 do
    let case = G.nth_case i in
    let bad = Sdf_oracle.check case in
    bump (label_of case) (bad <> []);
    problems := List.rev_append bad !problems;
    if (i + 1) mod 60 = 0 || i + 1 = count then
      Printf.printf "  %d/%d checked, %d disagreement(s)\n%!" (i + 1) count
        (List.length !problems)
  done;
  let problems = List.rev !problems in
  let elapsed = Unix.gettimeofday () -. t0 in
  let labels = [ "clean"; "imbalance"; "under-capacity"; "starved-cycle" ] in
  List.iter
    (fun label ->
      let cases, disagreeing =
        Option.value (Hashtbl.find_opt categories label) ~default:(0, 0)
      in
      Printf.printf "  %-14s %4d cases, %d disagreement(s)\n" label cases disagreeing)
    labels;
  Printf.printf "  total %d graphs in %.1fs: %s\n%!" count elapsed
    (if problems = [] then "linter and runtime agree everywhere"
     else Printf.sprintf "%d DISAGREEMENT(S)" (List.length problems));
  List.iter (fun p -> Printf.printf "  DISAGREEMENT %s\n%!" p) problems;
  (match json with
   | None -> ()
   | Some file ->
     let doc =
       Obs.Json.Obj
         [
           "schema", Obs.Json.Str "cgsim-bench-fuzz/1";
           "count", Obs.Json.Num (float_of_int count);
           "elapsed_s", Obs.Json.Num elapsed;
           ( "categories",
             Obs.Json.Arr
               (List.map
                  (fun label ->
                    let cases, disagreeing =
                      Option.value (Hashtbl.find_opt categories label) ~default:(0, 0)
                    in
                    Obs.Json.Obj
                      [
                        "label", Obs.Json.Str label;
                        "cases", Obs.Json.Num (float_of_int cases);
                        "disagreeing", Obs.Json.Num (float_of_int disagreeing);
                      ])
                  labels) );
           "disagreements", Obs.Json.Arr (List.map (fun p -> Obs.Json.Str p) problems);
         ]
     in
     Out_channel.with_open_bin file (fun oc ->
         Out_channel.output_string oc (Obs.Json.to_string doc));
     Printf.printf "  wrote %s\n%!" file);
  if problems <> [] then exit 1

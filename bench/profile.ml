(* Section 5.2 profile reproduction: the paper measures with perf that
   cgsim spends 99.94 % of the bitonic run inside the kernel and 0.06 %
   in synchronisation/data transfer.  Our scheduler keeps the same
   accounting natively: time inside fiber slices (kernel + queue calls
   made by the kernel) vs. time in the scheduling loop.

   With [~trace:(Some file)] the whole profile runs under an Obs trace
   session: scheduler slices, queue blocked-time spans and occupancy
   marks land in a Chrome trace-event JSON (open it in Perfetto), an
   aiesim replay of bitonic is added on the virtual-time track for
   side-by-side comparison, and a per-app queue/blocked-time breakdown
   is printed from the session metrics.  [~smoke:true] divides the
   repetition counts for CI. *)

let apps =
  [
    Apps.Harness.bitonic, 8192;
    Apps.Harness.farrow, 64;
    Apps.Harness.iir, 32;
    Apps.Harness.bilinear, 512;
  ]

let run_one (h : Apps.Harness.t) ~reps =
  let sinks, _ = h.make_sinks () in
  let stats = Cgsim.Runtime.execute_exn (h.graph ()) ~sources:(h.sources ~reps) ~sinks in
  h.name, stats

let run_apps ~smoke =
  Printf.printf "%-9s %9s %10s %12s %12s %10s\n" "graph" "reps" "slices" "kernel(ms)" "total(ms)"
    "fraction";
  List.map
    (fun ((h : Apps.Harness.t), reps) ->
      let reps = if smoke then max 1 (reps / 64) else reps in
      let name, stats = run_one h ~reps in
      Printf.printf "%-9s %9d %10d %12.2f %12.2f %9.4f%%\n" name reps stats.Cgsim.Sched.slices
        (stats.Cgsim.Sched.kernel_ns /. 1e6)
        (stats.Cgsim.Sched.total_ns /. 1e6)
        (100.0 *. Cgsim.Sched.kernel_fraction stats);
      name, reps, stats)
    apps

let json_of_results results =
  Obs.Json.Obj
    [
      "schema", Obs.Json.Str "cgsim-bench-profile/1";
      ( "apps",
        Obs.Json.Arr
          (List.map
             (fun (name, reps, (stats : Cgsim.Sched.stats)) ->
               Obs.Json.Obj
                 [
                   "name", Obs.Json.Str name;
                   "reps", Obs.Json.Num (float_of_int reps);
                   "slices", Obs.Json.Num (float_of_int stats.Cgsim.Sched.slices);
                   "kernel_ns", Obs.Json.Num stats.Cgsim.Sched.kernel_ns;
                   "total_ns", Obs.Json.Num stats.Cgsim.Sched.total_ns;
                   "kernel_fraction", Obs.Json.Num (Cgsim.Sched.kernel_fraction stats);
                 ])
             results) );
    ]

let write_json file results =
  try
    Out_channel.with_open_bin file (fun oc ->
        Out_channel.output_string oc (Obs.Json.to_string (json_of_results results)));
    Printf.printf "wrote profile JSON to %s\n%!" file
  with Sys_error msg ->
    Printf.eprintf "error: cannot write %s: %s\n" file msg;
    exit 1

(* Metric keys from Cgsim.Bqueue look like "queue.blocked_put:bitonic/net3";
   the graph name between ':' and '/' groups them per app. *)
let app_of_key key =
  match String.index_opt key ':' with
  | None -> None
  | Some i ->
    let rest = String.sub key (i + 1) (String.length key - i - 1) in
    (match String.index_opt rest '/' with
     | None -> Some rest
     | Some j -> Some (String.sub rest 0 j))

let print_queue_breakdown (snap : Obs.Metrics.snapshot) =
  let acc : (string, float * float * int) Hashtbl.t = Hashtbl.create 8 in
  let bump app ~put_ns ~get_ns ~events =
    let p, g, n = Option.value ~default:(0.0, 0.0, 0) (Hashtbl.find_opt acc app) in
    Hashtbl.replace acc app (p +. put_ns, g +. get_ns, n + events)
  in
  List.iter
    (fun (h : Obs.Metrics.histo_snapshot) ->
      match app_of_key h.Obs.Metrics.h_name with
      | Some app when String.length h.h_name >= 18 ->
        if String.sub h.h_name 0 18 = "queue.blocked_put:" then
          bump app ~put_ns:h.sum ~get_ns:0.0 ~events:h.count
        else if String.sub h.h_name 0 18 = "queue.blocked_get:" then
          bump app ~put_ns:0.0 ~get_ns:h.sum ~events:h.count
      | _ -> ())
    snap.Obs.Metrics.histograms;
  let occ : (string, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (g : Obs.Metrics.gauge_snapshot) ->
      let name = g.Obs.Metrics.g_name in
      if String.length name >= 19 && String.sub name 0 19 = "queue.occupancy_hw:" then
        match app_of_key name with
        | Some app ->
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt occ app) in
          Hashtbl.replace occ app (Float.max prev g.peak)
        | None -> ())
    snap.Obs.Metrics.gauges;
  Printf.printf "\nper-app queue breakdown (from obs metrics):\n";
  Printf.printf "%-9s %16s %16s %14s %14s\n" "graph" "put-blocked(ms)" "get-blocked(ms)"
    "block-events" "max-occupancy";
  List.iter
    (fun ((h : Apps.Harness.t), _) ->
      let put_ns, get_ns, events =
        Option.value ~default:(0.0, 0.0, 0) (Hashtbl.find_opt acc h.name)
      in
      let occupancy = Option.value ~default:0.0 (Hashtbl.find_opt occ h.name) in
      Printf.printf "%-9s %16.3f %16.3f %14d %14.0f\n" h.name (put_ns /. 1e6) (get_ns /. 1e6)
        events occupancy)
    apps

(* A short aiesim run of bitonic inside the same session puts replay
   iteration spans (virtual time) next to the capture's wall-clock
   spans — the single-Perfetto-view comparison the trace is for. *)
let add_aiesim_replay () =
  let h = Apps.Harness.bitonic in
  let sinks, _ = h.make_sinks () in
  let report =
    Aiesim.Sim.run
      (Aiesim.Deploy.baseline (h.graph ()))
      ~sources:(h.sources ~reps:8) ~sinks
  in
  Printf.printf "aiesim replay in trace: %s, %.0f cycles, %d blocks\n" report.Aiesim.Sim.label
    report.Aiesim.Sim.total_cycles report.Aiesim.Sim.blocks

let run ?trace ?json ?folded ?(smoke = false) () =
  Printf.printf "\n== Profile (Section 5.2): cgsim kernel-time fraction ==\n";
  (match folded, trace with
   | Some _, None ->
     Printf.eprintf "error: --folded needs --trace (self-time comes from the obs session)\n";
     exit 1
   | _ -> ());
  (match trace with
   | None ->
     let results = run_apps ~smoke in
     Option.iter (fun file -> write_json file results) json
   | Some file ->
     let results, session =
       Obs.Trace.with_session ~capacity:(1 lsl 18) (fun () ->
           let results = run_apps ~smoke in
           add_aiesim_replay ();
           results)
     in
     Option.iter (fun f -> write_json f results) json;
     (try
        Out_channel.with_open_bin file (fun oc ->
            Out_channel.output_string oc (Obs.Export.chrome_json session))
      with Sys_error msg ->
        Printf.eprintf "error: cannot write trace: %s\n" msg;
        exit 1);
     let snap = Obs.Metrics.snapshot session.Obs.Trace.metrics in
     print_queue_breakdown snap;
     Printf.printf "\nper-kernel self time (from sched slices):\n%s" (Obs.Profile.table snap);
     (match folded with
      | None -> ()
      | Some f ->
        (try
           Out_channel.with_open_bin f (fun oc ->
               Out_channel.output_string oc (Obs.Profile.collapsed snap));
           Printf.printf "wrote collapsed stacks (flamegraph.pl %s > profile.svg) to %s\n" f f
         with Sys_error msg ->
           Printf.eprintf "error: cannot write folded stacks: %s\n" msg;
           exit 1));
     Printf.printf "\n%s" (Obs.Export.summary session);
     Printf.printf "wrote Chrome trace (open in https://ui.perfetto.dev) to %s\n" file);
  Printf.printf
    "(paper, via perf: bitonic spends 99.94%% in the kernel, 0.06%% in sync/transfer;\n\
    \ the fraction here separates fiber execution from scheduler bookkeeping)\n%!"

(* Bechamel micro-benchmarks of the framework's moving parts: queue
   transfer, context switch, vector intrinsics, graph construction and
   instantiation.  These back the design claims in DESIGN.md (cooperative
   switching is cheap; construction cost is front-loaded).

   On top of the bechamel estimates, a manually-timed element-vs-block
   queue transfer on the same queue configuration backs the block
   fast-path claim in docs/PERFORMANCE.md — the block side rides the
   unboxed (bigarray-backed) data plane, so it is a bounds-checked blit.
   A fused-vs-unfused comparison on a three-kernel rate-matched chain
   backs the operator-fusion claim.  [run ~json:file] writes every
   number as machine-readable JSON (schema "cgsim-bench-micro/3") so CI
   can parse it back and the repo can commit a baseline. *)

open Bechamel
open Toolkit

let queue_transfer =
  Test.make ~name:"bqueue: 1k elements producer->consumer"
    (Staged.stage (fun () ->
         let q = Cgsim.Bqueue.create ~name:"bench" ~dtype:Cgsim.Dtype.I32 ~capacity:16 () in
         let p = Cgsim.Bqueue.add_producer q in
         let c = Cgsim.Bqueue.add_consumer q in
         let s = Cgsim.Sched.create () in
         Cgsim.Sched.spawn s ~name:"producer" (fun () ->
             for i = 1 to 1000 do
               Cgsim.Bqueue.put p (Cgsim.Value.Int i)
             done;
             Cgsim.Bqueue.producer_done p);
         Cgsim.Sched.spawn s ~name:"consumer" (fun () ->
             let rec loop () =
               ignore (Cgsim.Bqueue.get c);
               loop ()
             in
             loop ());
         ignore (Cgsim.Sched.run s)))

let context_switch =
  Test.make ~name:"sched: 1k yields across 2 fibers"
    (Staged.stage (fun () ->
         let s = Cgsim.Sched.create () in
         let fiber () =
           for _ = 1 to 500 do
             Cgsim.Sched.yield ()
           done
         in
         Cgsim.Sched.spawn s ~name:"a" fiber;
         Cgsim.Sched.spawn s ~name:"b" fiber;
         ignore (Cgsim.Sched.run s)))

let fpmac_bench =
  let a = Array.make 8 1.5 and b = Array.make 8 0.25 and acc = Array.make 8 0.0 in
  Test.make ~name:"intrinsics: fpmac 8-lane"
    (Staged.stage (fun () -> ignore (Aie.Intrinsics.fpmac acc a b)))

let sort16_bench =
  let v = Workloads.Signals.random_f32 ~seed:1 16 in
  Test.make ~name:"bitonic: sort one 16-vector"
    (Staged.stage (fun () -> ignore (Apps.Bitonic.sort_vector v)))

let graph_construction =
  Test.make ~name:"builder: freeze bitonic graph"
    (Staged.stage (fun () -> ignore (Apps.Bitonic.graph ())))

let runtime_instantiation =
  let g = Apps.Bitonic.graph () in
  Test.make ~name:"runtime: instantiate bitonic graph"
    (Staged.stage (fun () -> ignore (Cgsim.Runtime.instantiate g)))

let runtime_reset =
  let compiled = Cgsim.Runtime.compile (Apps.Bitonic.graph ()) in
  let inst = Cgsim.Runtime.new_instance compiled in
  Test.make ~name:"runtime: reset bitonic instance"
    (Staged.stage (fun () -> Cgsim.Runtime.reset inst))

let tests =
  [
    queue_transfer;
    context_switch;
    fpmac_bench;
    sort16_bench;
    graph_construction;
    runtime_instantiation;
    runtime_reset;
  ]

let bechamel_results ~quota =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) () in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.fold
        (fun name ols_result acc ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> (name, est) :: acc
          | _ -> acc)
        analyzed [])
    tests

(* ------------------------------------------------------------------ *)
(* Element-vs-block transfer on one queue configuration                 *)
(* ------------------------------------------------------------------ *)

let transfer_capacity = 4096

let transfer_chunk = 512

(* Move [elements] I32 values through one capacity-[transfer_capacity]
   queue between a producer and a consumer fiber; returns wall ns.
   [spsc] seals the queue onto the single-producer/single-consumer fast
   path (what Runtime does for 1:1 edges); the default keeps the
   broadcast MPMC bookkeeping, isolating exactly that overhead. *)
let time_element_path ?(spsc = false) ~elements () =
  let q =
    Cgsim.Bqueue.create ~name:"xfer-elem" ~dtype:Cgsim.Dtype.I32 ~capacity:transfer_capacity ()
  in
  let p = Cgsim.Bqueue.add_producer q in
  let c = Cgsim.Bqueue.add_consumer q in
  Cgsim.Bqueue.seal ~spsc q;
  let s = Cgsim.Sched.create () in
  let v = Cgsim.Value.Int 7 in
  Cgsim.Sched.spawn s ~name:"producer" (fun () ->
      for _ = 1 to elements do
        Cgsim.Bqueue.put p v
      done;
      Cgsim.Bqueue.producer_done p);
  Cgsim.Sched.spawn s ~name:"consumer" (fun () ->
      let rec loop () =
        ignore (Cgsim.Bqueue.get c);
        loop ()
      in
      loop ());
  let t0 = Obs.Clock.now_ns () in
  ignore (Cgsim.Sched.run s);
  Obs.Clock.now_ns () -. t0

(* Same traffic, but the producer pushes [transfer_chunk]-element flat
   int blocks and the consumer drains with [get_ints_into] into one
   reused buffer — the unboxed fast path: both sides are bounds-checked
   blits against the bigarray-backed ring, no per-element boxing and no
   per-chunk allocation anywhere. *)
let time_block_path ~elements =
  let q =
    Cgsim.Bqueue.create ~name:"xfer-blk" ~dtype:Cgsim.Dtype.I32 ~capacity:transfer_capacity ()
  in
  let p = Cgsim.Bqueue.add_producer q in
  let c = Cgsim.Bqueue.add_consumer q in
  let s = Cgsim.Sched.create () in
  let block = Array.make transfer_chunk 7 in
  let blocks = elements / transfer_chunk in
  Cgsim.Sched.spawn s ~name:"producer" (fun () ->
      for _ = 1 to blocks do
        Cgsim.Bqueue.put_ints p block
      done;
      Cgsim.Bqueue.producer_done p);
  Cgsim.Sched.spawn s ~name:"consumer" (fun () ->
      let buf = Array.make transfer_chunk 0 in
      let rec loop () =
        ignore (Cgsim.Bqueue.get_ints_into c buf);
        loop ()
      in
      loop ());
  let t0 = Obs.Clock.now_ns () in
  ignore (Cgsim.Sched.run s);
  Obs.Clock.now_ns () -. t0

let best_of n f =
  let rec go i acc = if i >= n then acc else go (i + 1) (Float.min acc (f ())) in
  go 1 (f ())

type block_comparison = {
  elements : int;
  element_ns_per_elem : float;
  block_ns_per_elem : float;
  speedup : float;
}

let compare_transfer ~smoke =
  let elements = if smoke then 16384 else 262144 in
  let rounds = if smoke then 2 else 5 in
  let element_ns = best_of rounds (fun () -> time_element_path ~elements ()) in
  let block_ns = best_of rounds (fun () -> time_block_path ~elements) in
  let n = float_of_int elements in
  {
    elements;
    element_ns_per_elem = element_ns /. n;
    block_ns_per_elem = block_ns /. n;
    speedup = element_ns /. block_ns;
  }

type spsc_comparison = {
  sp_elements : int;
  mpmc_ns_per_elem : float;
  spsc_ns_per_elem : float;
  sp_speedup : float;
}

(* Same element traffic through the same queue shape, MPMC bookkeeping
   vs the sealed SPSC fast path — the per-transfer saving Runtime's
   automatic 1:1-edge detection buys. *)
let compare_spsc ~smoke =
  let elements = if smoke then 16384 else 262144 in
  let rounds = if smoke then 3 else 7 in
  let mpmc_ns = best_of rounds (fun () -> time_element_path ~spsc:false ~elements ()) in
  let spsc_ns = best_of rounds (fun () -> time_element_path ~spsc:true ~elements ()) in
  let n = float_of_int elements in
  {
    sp_elements = elements;
    mpmc_ns_per_elem = mpmc_ns /. n;
    spsc_ns_per_elem = spsc_ns /. n;
    sp_speedup = mpmc_ns /. spsc_ns;
  }

type fusion_comparison = {
  f_kernels : int;
  f_rate : int;
  f_elements : int;
  unfused_ns_per_elem : float;
  fused_ns_per_elem : float;
  f_speedup : float;
}

(* Three rate-matched F32 scale kernels in a line — the memcpy-class
   chain operator fusion targets: each hop moves whole 64-element
   windows and the per-window arithmetic is a single multiply, so queue
   transfer and fiber hand-off dominate.  Unfused, every hop is a
   Bqueue with a scheduler round-trip per window; fused, the runtime
   collapses all three kernels into one fiber passing windows through
   direct hand-off edges.

   The graph boundary (source and sink) nets get a deep DMA-style
   buffer so the comparison isolates the inter-kernel hops: both
   configurations pay the same boundary cost, and the chain-internal
   nets keep the realistic default stream depth — exactly the queues
   fusion removes. *)
let fusion_rate = 64

let fusion_boundary_depth = 4096

let fusion_scale_kernel ?in_settings ?out_settings name factor =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name ~pure:true ~stateless:true
    ~rates:[ "in", fusion_rate; "out", fusion_rate ]
    [
      Cgsim.Kernel.in_port ?settings:in_settings "in" Cgsim.Dtype.F32;
      Cgsim.Kernel.out_port ?settings:out_settings "out" Cgsim.Dtype.F32;
    ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
      while true do
        let w = Cgsim.Port.get_window_f32 i fusion_rate in
        for k = 0 to fusion_rate - 1 do
          w.(k) <- w.(k) *. factor
        done;
        Cgsim.Port.put_window_f32 o w
      done)

let fusion_kernels =
  lazy
    (let deep = Cgsim.Settings.(with_depth fusion_boundary_depth default) in
     let ks =
       [
         fusion_scale_kernel ~in_settings:deep "micro_scale_a" 2.0;
         fusion_scale_kernel "micro_scale_b" 3.0;
         fusion_scale_kernel ~out_settings:deep "micro_scale_c" 0.5;
       ]
     in
     List.iter Cgsim.Registry.register ks;
     ks)

let fusion_graph () =
  match Lazy.force fusion_kernels with
  | [ ka; kb; kc ] ->
    Cgsim.Builder.make ~name:"micro_fusion_chain" ~inputs:[ "in", Cgsim.Dtype.F32 ]
      (fun b conns ->
        let n1 = Cgsim.Builder.net b Cgsim.Dtype.F32 in
        let n2 = Cgsim.Builder.net b Cgsim.Dtype.F32 in
        let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
        ignore (Cgsim.Builder.add_kernel b ka [ List.hd conns; n1 ]);
        ignore (Cgsim.Builder.add_kernel b kb [ n1; n2 ]);
        ignore (Cgsim.Builder.add_kernel b kc [ n2; out ]);
        [ out ])
  | _ -> assert false

let time_fusion ~fuse ~elements =
  let g = fusion_graph () in
  let config = Cgsim.Run_config.(with_fuse fuse default) in
  let input = Array.init elements (fun i -> float_of_int (i land 1023)) in
  let inst = Cgsim.Runtime.new_instance (Cgsim.Runtime.compile ~config g) in
  let sink, _ = Cgsim.Io.f32_buffer () in
  let t0 = Obs.Clock.now_ns () in
  (match Cgsim.Runtime.run inst ~sources:[ Cgsim.Io.of_f32_array input ] ~sinks:[ sink ] with
   | Cgsim.Runtime.Completed _ -> ()
   | o -> Format.kasprintf failwith "fusion bench: %a" Cgsim.Runtime.pp_outcome o);
  Obs.Clock.now_ns () -. t0

let compare_fusion ~smoke =
  let elements = if smoke then 16384 else 262144 in
  let rounds = if smoke then 2 else 5 in
  (* Earlier sections (bechamel, block transfer) leave a large live major
     heap; compact so both configs start from the same GC state instead of
     paying for their predecessors' garbage. *)
  Gc.compact ();
  let unfused_ns = best_of rounds (fun () -> time_fusion ~fuse:false ~elements) in
  let fused_ns = best_of rounds (fun () -> time_fusion ~fuse:true ~elements) in
  let n = float_of_int elements in
  {
    f_kernels = 3;
    f_rate = fusion_rate;
    f_elements = elements;
    unfused_ns_per_elem = unfused_ns /. n;
    fused_ns_per_elem = fused_ns /. n;
    f_speedup = unfused_ns /. fused_ns;
  }

type warm_comparison = {
  w_requests : int;
  w_reps : int;
  cold_us_per_req : float;
  warm_us_per_req : float;
  w_speedup : float;
}

(* Serving-shaped requests (bitonic at a small repetition count, where
   setup cost is a large fraction of the request) served cold — a fresh
   instantiation per request, lint included, exactly what a naive server
   does — against warm: compile once, one instance, reset between
   requests.  The per-request saving is what {!Cgsim.Pool}'s warm cache
   banks per attempt. *)
let compare_warm ~smoke ~fuse =
  let h = Apps.Harness.bitonic in
  let reps = 4 in
  let requests = if smoke then 32 else 256 in
  let config = Cgsim.Run_config.(with_fuse fuse default) in
  let run_request inst =
    let sinks, _ = h.Apps.Harness.make_sinks () in
    match Cgsim.Runtime.run inst ~sources:(h.Apps.Harness.sources ~reps) ~sinks with
    | Cgsim.Runtime.Completed _ -> ()
    | o -> Format.kasprintf failwith "warm-serve bench: %a" Cgsim.Runtime.pp_outcome o
  in
  let g = h.Apps.Harness.graph () in
  let cold () =
    let t0 = Obs.Clock.now_ns () in
    for _ = 1 to requests do
      run_request (Cgsim.Runtime.instantiate ~config g)
    done;
    Obs.Clock.now_ns () -. t0
  in
  let warm () =
    let inst = Cgsim.Runtime.new_instance (Cgsim.Runtime.compile ~config g) in
    let t0 = Obs.Clock.now_ns () in
    for _ = 1 to requests do
      Cgsim.Runtime.reset inst;
      run_request inst
    done;
    Obs.Clock.now_ns () -. t0
  in
  let rounds = if smoke then 2 else 5 in
  let cold_ns = best_of rounds cold in
  let warm_ns = best_of rounds warm in
  let n = float_of_int requests in
  {
    w_requests = requests;
    w_reps = reps;
    cold_us_per_req = cold_ns /. n /. 1e3;
    warm_us_per_req = warm_ns /. n /. 1e3;
    w_speedup = cold_ns /. warm_ns;
  }

let json_of_warm (w : warm_comparison) =
  Obs.Json.Obj
    [
      "requests", Obs.Json.Num (float_of_int w.w_requests);
      "reps_per_request", Obs.Json.Num (float_of_int w.w_reps);
      "cold_us_per_req", Obs.Json.Num w.cold_us_per_req;
      "warm_us_per_req", Obs.Json.Num w.warm_us_per_req;
      "speedup", Obs.Json.Num w.w_speedup;
    ]

let json_of_spsc (sp : spsc_comparison) =
  Obs.Json.Obj
    [
      "elements", Obs.Json.Num (float_of_int sp.sp_elements);
      "capacity", Obs.Json.Num (float_of_int transfer_capacity);
      "mpmc_ns_per_elem", Obs.Json.Num sp.mpmc_ns_per_elem;
      "spsc_ns_per_elem", Obs.Json.Num sp.spsc_ns_per_elem;
      "speedup", Obs.Json.Num sp.sp_speedup;
    ]

let json_of_fusion (f : fusion_comparison) =
  Obs.Json.Obj
    [
      "kernels", Obs.Json.Num (float_of_int f.f_kernels);
      "rate", Obs.Json.Num (float_of_int f.f_rate);
      "elements", Obs.Json.Num (float_of_int f.f_elements);
      "unfused_ns_per_elem", Obs.Json.Num f.unfused_ns_per_elem;
      "fused_ns_per_elem", Obs.Json.Num f.fused_ns_per_elem;
      "speedup", Obs.Json.Num f.f_speedup;
    ]

let json_of_run ~smoke ~fuse ~bechamel (cmp : block_comparison) (sp : spsc_comparison)
    (fc : fusion_comparison) (w : warm_comparison) =
  Obs.Json.Obj
    [
      "schema", Obs.Json.Str "cgsim-bench-micro/3";
      "smoke", Obs.Json.Bool smoke;
      "fuse", Obs.Json.Bool fuse;
      ( "results",
        Obs.Json.Arr
          (List.map
             (fun (name, ns) ->
               Obs.Json.Obj [ "name", Obs.Json.Str name; "ns_per_run", Obs.Json.Num ns ])
             bechamel) );
      ( "block_transfer",
        Obs.Json.Obj
          [
            "elements", Obs.Json.Num (float_of_int cmp.elements);
            "capacity", Obs.Json.Num (float_of_int transfer_capacity);
            "chunk", Obs.Json.Num (float_of_int transfer_chunk);
            "element_ns_per_elem", Obs.Json.Num cmp.element_ns_per_elem;
            "block_ns_per_elem", Obs.Json.Num cmp.block_ns_per_elem;
            "speedup", Obs.Json.Num cmp.speedup;
          ] );
      "spsc", json_of_spsc sp;
      "fusion", json_of_fusion fc;
      "warm_serve", json_of_warm w;
    ]

let run ?json ?(smoke = false) ?(fuse = true) () =
  (* Measure fusion first: it is the most GC/process-state-sensitive
     comparison, and the bechamel + transfer sections leave the process
     measurably slower (larger heap, hot allocator) in a way that best-of
     minima do not recover from. *)
  let fc = compare_fusion ~smoke in
  Printf.printf "\n== Micro-benchmarks (bechamel) ==\n%!";
  let quota = if smoke then 0.02 else 0.25 in
  let bechamel = bechamel_results ~quota in
  List.iter (fun (name, est) -> Printf.printf "%-45s %12.1f ns/run\n%!" name est) bechamel;
  Printf.printf "\n== Block-transfer fast path (same queue, cap=%d, chunk=%d) ==\n%!"
    transfer_capacity transfer_chunk;
  let cmp = compare_transfer ~smoke in
  Printf.printf "%-45s %12.2f ns/elem\n" "element path (put/get)" cmp.element_ns_per_elem;
  Printf.printf "%-45s %12.2f ns/elem\n" "block path (put_ints/get_ints_into)" cmp.block_ns_per_elem;
  Printf.printf "%-45s %12.2fx\n%!" "speedup" cmp.speedup;
  Printf.printf "\n== SPSC fast path (1:1 edge, element transfers, cap=%d) ==\n%!"
    transfer_capacity;
  let sp = compare_spsc ~smoke in
  Printf.printf "%-45s %12.2f ns/elem\n" "MPMC path (broadcast bookkeeping)" sp.mpmc_ns_per_elem;
  Printf.printf "%-45s %12.2f ns/elem\n" "SPSC path (sealed 1:1)" sp.spsc_ns_per_elem;
  Printf.printf "%-45s %12.2fx\n%!" "speedup" sp.sp_speedup;
  Printf.printf "\n== Operator fusion (%d rate-matched kernels, window=%d) ==\n%!" fc.f_kernels
    fc.f_rate;
  Printf.printf "%-45s %12.2f ns/elem\n" "unfused (one fiber + queue per hop)" fc.unfused_ns_per_elem;
  Printf.printf "%-45s %12.2f ns/elem\n" "fused (one fiber, direct hand-off)" fc.fused_ns_per_elem;
  Printf.printf "%-45s %12.2fx\n%!" "speedup" fc.f_speedup;
  let w = compare_warm ~smoke ~fuse in
  Printf.printf "\n== Warm serving (bitonic, %d reps/request, %d requests) ==\n%!" w.w_reps
    w.w_requests;
  Printf.printf "%-45s %12.2f us/req\n" "cold (instantiate per request)" w.cold_us_per_req;
  Printf.printf "%-45s %12.2f us/req\n" "warm (compile once, reset between)" w.warm_us_per_req;
  Printf.printf "%-45s %12.2fx\n%!" "speedup" w.w_speedup;
  match json with
  | None -> ()
  | Some file ->
    let doc = json_of_run ~smoke ~fuse ~bechamel cmp sp fc w in
    (try Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc (Obs.Json.to_string doc))
     with Sys_error msg ->
       Printf.eprintf "error: cannot write %s: %s\n" file msg;
       exit 1);
    Printf.printf "wrote micro-benchmark JSON to %s\n%!" file

(* Shared option vocabulary for the bench subcommands.

   Every subcommand used to hand-roll its own option loop, and the
   spellings drifted (--json here, no --schema there, a private --smoke
   each).  This module owns one parser for the whole flag surface; a
   subcommand declares which names it accepts and gets back a filled
   [opts] plus the unconsumed tokens.  An option that exists globally
   but is not accepted by the subcommand is a clear error naming the
   subcommand, not an "unknown bench". *)

type opts = {
  json : string option;  (* --json FILE: machine-readable results *)
  metrics : string option;  (* --metrics FILE: Prometheus exposition *)
  trace : string option;  (* --trace FILE: Chrome trace / CSV timeline *)
  folded : string option;  (* --folded FILE: flamegraph folded stacks *)
  schema : string option;  (* --schema NAME: expected "schema" field *)
  smoke : bool;  (* --smoke: reduced quotas for CI *)
  chaos : bool;  (* --chaos: seeded fault injection *)
  fuse : bool option;  (* --fuse on|off *)
  warm : bool option;  (* --warm on|off *)
  domains : int list option;  (* --domains CSV *)
  requests : int option;  (* --requests N *)
  count : int option;  (* --count N *)
  rates : float list option;  (* --rates CSV *)
  remote : string option;  (* --remote ADDR: drive a cgx serve daemon *)
}

let none =
  {
    json = None;
    metrics = None;
    trace = None;
    folded = None;
    schema = None;
    smoke = false;
    chaos = false;
    fuse = None;
    warm = None;
    domains = None;
    requests = None;
    count = None;
    rates = None;
    remote = None;
  }

let all_options =
  [
    "--json"; "--metrics"; "--trace"; "--folded"; "--schema"; "--smoke"; "--chaos"; "--fuse";
    "--warm"; "--domains"; "--requests"; "--count"; "--rates"; "--remote";
  ]

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let parse_on_off name v =
  match v with
  | "on" -> Ok true
  | "off" -> Ok false
  | _ -> fail "%s needs \"on\" or \"off\"" name

let parse_pos_int name v =
  match int_of_string_opt v with
  | Some n when n > 0 -> Ok n
  | _ -> fail "%s needs a positive integer" name

let parse_int_csv name v =
  let parts = String.split_on_char ',' v |> List.map int_of_string_opt in
  let ds = List.filter_map Fun.id parts in
  if List.length ds = List.length parts && ds <> [] && List.for_all (fun d -> d > 0) ds then Ok ds
  else fail "%s needs a CSV of positive ints (e.g. 1,2,4)" name

let parse_float_csv name v =
  let parts = String.split_on_char ',' v |> List.map float_of_string_opt in
  let rs = List.filter_map Fun.id parts in
  if List.length rs = List.length parts && rs <> [] && List.for_all (fun r -> r > 0.) rs then Ok rs
  else fail "%s needs a CSV of positive numbers (e.g. 50,200,800)" name

(* [parse ~cmd ~accept tokens] consumes leading options and returns the
   options record plus everything after the first non-option token (the
   next subcommand).  [Error] carries a user-facing message. *)
let parse ~cmd ~accept tokens =
  let value name rest k =
    match rest with
    | v :: rest -> ( match k v with Ok acc -> Ok (acc, rest) | Error _ as e -> e)
    | [] -> fail "%s needs an argument" name
  in
  let rec go acc = function
    | tok :: rest when List.mem tok accept -> (
      let with_value k =
        match value tok rest (k acc) with
        | Ok (acc, rest) -> go acc rest
        | Error m -> Error m
      in
      match tok with
      | "--json" -> with_value (fun acc v -> Ok { acc with json = Some v })
      | "--metrics" -> with_value (fun acc v -> Ok { acc with metrics = Some v })
      | "--trace" -> with_value (fun acc v -> Ok { acc with trace = Some v })
      | "--folded" -> with_value (fun acc v -> Ok { acc with folded = Some v })
      | "--schema" -> with_value (fun acc v -> Ok { acc with schema = Some v })
      | "--remote" -> with_value (fun acc v -> Ok { acc with remote = Some v })
      | "--smoke" -> go { acc with smoke = true } rest
      | "--chaos" -> go { acc with chaos = true } rest
      | "--fuse" ->
        with_value (fun acc v ->
            Result.map (fun b -> { acc with fuse = Some b }) (parse_on_off tok v))
      | "--warm" ->
        with_value (fun acc v ->
            Result.map (fun b -> { acc with warm = Some b }) (parse_on_off tok v))
      | "--domains" ->
        with_value (fun acc v ->
            Result.map (fun ds -> { acc with domains = Some ds }) (parse_int_csv tok v))
      | "--requests" ->
        with_value (fun acc v ->
            Result.map (fun n -> { acc with requests = Some n }) (parse_pos_int tok v))
      | "--count" ->
        with_value (fun acc v ->
            Result.map (fun n -> { acc with count = Some n }) (parse_pos_int tok v))
      | "--rates" ->
        with_value (fun acc v ->
            Result.map (fun rs -> { acc with rates = Some rs }) (parse_float_csv tok v))
      | _ -> fail "unhandled option %s" tok)
    | tok :: _ when List.mem tok all_options ->
      fail "option %s is not supported by %s" tok cmd
    | rest -> Ok (acc, rest)
  in
  go none tokens

(* Parallel serving benchmark: throughput of Cgsim.Pool over the four
   example applications.

   Each request is one complete cgsim simulation of the app's graph
   (fresh Runtime instance, [serve_reps] input blocks); the pool serves
   a fixed batch of requests on 1/2/4/8 domains and we report
   requests/sec plus scaling efficiency against the single-domain run.
   Every request's output is verified against the scalar reference, so
   the numbers can't quietly come from broken parallel runs.

   The host core count is recorded in the JSON: on a single-core
   container the efficiency at >1 domains is expected to collapse to
   ~1/domains, and the committed baseline must be read with its
   "host_cores" field in hand.

   [run ~json:file] writes schema "cgsim-bench-serve/1"; check-json
   validates it in CI.  The SPSC micro comparison rides along so the
   serving baseline and the queue fast-path numbers land in one file. *)

let default_domains = [ 1; 2; 4; 8 ]

let smoke_domains = [ 1; 2 ]

(* One request should be a meaningful simulation, not a fixture:
   table2's per-app rep counts scaled down so a full serve run costs
   about one table2 cgsim column per domain count. *)
let serve_reps ~smoke (t : Apps.Harness.t) =
  max 1 (t.Apps.Harness.table2_reps / if smoke then 64 else 16)

type app_run = {
  domains : int;
  wall_ns : float;
  rps : float;
  steals : int;
  errors : string list;
}

let run_app ~domains ~requests ~reps (t : Apps.Harness.t) g =
  let contents = Array.make requests (fun () -> []) in
  let io r =
    (* Called on the executing domain; distinct [r] slots, no sharing. *)
    let sinks, c = t.Apps.Harness.make_sinks () in
    contents.(r) <- c;
    t.Apps.Harness.sources ~reps, sinks
  in
  let stats = Cgsim.Pool.run ~domains ~requests ~io g in
  let errors = ref [] in
  Array.iter
    (fun (res : Cgsim.Pool.request_result) ->
      match res.Cgsim.Pool.outcome with
      | Error e -> errors := Printf.sprintf "req %d: %s" res.Cgsim.Pool.req_id e :: !errors
      | Ok _ ->
        (match t.Apps.Harness.check ~reps (contents.(res.Cgsim.Pool.req_id) ()) with
         | Ok () -> ()
         | Error e ->
           errors := Printf.sprintf "req %d: wrong output: %s" res.Cgsim.Pool.req_id e :: !errors))
    stats.Cgsim.Pool.results;
  {
    domains;
    wall_ns = stats.Cgsim.Pool.wall_ns;
    rps = float_of_int requests /. (stats.Cgsim.Pool.wall_ns /. 1e9);
    steals = stats.Cgsim.Pool.steals;
    errors = List.rev !errors;
  }

let json_of_app_run ~base_wall (r : app_run) =
  let speedup = base_wall /. r.wall_ns in
  Obs.Json.Obj
    [
      "domains", Obs.Json.Num (float_of_int r.domains);
      "wall_ms", Obs.Json.Num (r.wall_ns /. 1e6);
      "requests_per_sec", Obs.Json.Num r.rps;
      "speedup_vs_1", Obs.Json.Num speedup;
      "efficiency", Obs.Json.Num (speedup /. float_of_int r.domains);
      "steals", Obs.Json.Num (float_of_int r.steals);
      "errors", Obs.Json.Arr (List.map (fun e -> Obs.Json.Str e) r.errors);
    ]

let run ?json ?(smoke = false) ?(domains = if smoke then smoke_domains else default_domains)
    ?requests () =
  let requests = Option.value requests ~default:(if smoke then 6 else 32) in
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf "\n== Parallel serving (Cgsim.Pool, %d requests/app, host cores: %d) ==\n%!"
    requests host_cores;
  let failures = ref 0 in
  let app_docs =
    List.map
      (fun (t : Apps.Harness.t) ->
        let reps = serve_reps ~smoke t in
        let g = t.Apps.Harness.graph () in
        Printf.printf "\n%-10s (%d reps/request)\n%!" t.Apps.Harness.name reps;
        let runs = List.map (fun d -> run_app ~domains:d ~requests ~reps t g) domains in
        let base_wall =
          match runs with
          | first :: _ -> first.wall_ns
          | [] -> 1.0
        in
        List.iter
          (fun r ->
            let speedup = base_wall /. r.wall_ns in
            Printf.printf
              "  domains=%d  %8.1f ms  %8.2f req/s  speedup %5.2fx  eff %4.0f%%  steals %d\n%!"
              r.domains (r.wall_ns /. 1e6) r.rps speedup
              (100.0 *. speedup /. float_of_int r.domains)
              r.steals;
            List.iter
              (fun e ->
                incr failures;
                Printf.printf "    ERROR %s\n%!" e)
              r.errors)
          runs;
        Obs.Json.Obj
          [
            "name", Obs.Json.Str t.Apps.Harness.name;
            "reps_per_request", Obs.Json.Num (float_of_int reps);
            "requests", Obs.Json.Num (float_of_int requests);
            "runs", Obs.Json.Arr (List.map (json_of_app_run ~base_wall) runs);
          ])
      Apps.Harness.all
  in
  let sp = Micro.compare_spsc ~smoke in
  Printf.printf "\nSPSC vs MPMC element path: %.2f vs %.2f ns/elem (%.2fx)\n%!"
    sp.Micro.spsc_ns_per_elem sp.Micro.mpmc_ns_per_elem sp.Micro.sp_speedup;
  (match json with
   | None -> ()
   | Some file ->
     let doc =
       Obs.Json.Obj
         [
           "schema", Obs.Json.Str "cgsim-bench-serve/1";
           "smoke", Obs.Json.Bool smoke;
           "host_cores", Obs.Json.Num (float_of_int host_cores);
           "apps", Obs.Json.Arr app_docs;
           "spsc_micro", Micro.json_of_spsc sp;
         ]
     in
     (try
        Out_channel.with_open_bin file (fun oc ->
            Out_channel.output_string oc (Obs.Json.to_string doc))
      with Sys_error msg ->
        Printf.eprintf "error: cannot write %s: %s\n" file msg;
        exit 1);
     Printf.printf "wrote serving benchmark JSON to %s\n%!" file);
  if !failures > 0 then begin
    Printf.eprintf "serve: %d request(s) failed verification\n" !failures;
    exit 1
  end
